"""Unit tests for configuration objects and the paper's sizing rules."""

import pytest

from repro.config import (CacheConfig, SimulationConfig, SSDConfig,
                          TPFTLConfig)
from repro.errors import ConfigError


class TestSSDConfigGeometry:
    def test_entries_per_translation_page(self):
        config = SSDConfig(logical_pages=8192, page_size=4096)
        assert config.entries_per_translation_page == 1024

    def test_translation_pages_rounds_up(self):
        config = SSDConfig(logical_pages=1500, page_size=4096)
        assert config.translation_pages == 2

    def test_logical_blocks(self):
        config = SSDConfig(logical_pages=8192, pages_per_block=64)
        assert config.logical_blocks == 128

    def test_physical_exceeds_logical_by_overprovision(self):
        config = SSDConfig(logical_pages=8192, over_provision=0.15)
        assert config.physical_blocks > config.logical_blocks * 1.15

    def test_capacity_bytes(self):
        config = SSDConfig(logical_pages=8192, page_size=4096)
        assert config.capacity_bytes == 32 * 1024 * 1024

    def test_paper_512mb_cache_is_8_5kb(self):
        """§5.1: a 512MB SSD gets an 8.5KB cache (8KB + 512B GTD)."""
        config = SSDConfig(logical_pages=512 * 1024 * 1024 // 4096)
        assert config.block_table_bytes == 8 * 1024
        assert config.gtd_bytes == 512
        assert config.paper_cache_bytes() == 8 * 1024 + 512

    def test_paper_16gb_cache_is_272kb(self):
        """§5.1: a 16GB SSD gets a 272KB cache (256KB + 16KB GTD)."""
        config = SSDConfig(logical_pages=16 * 1024 * 1024 * 1024 // 4096)
        assert config.block_table_bytes == 256 * 1024
        assert config.gtd_bytes == 16 * 1024
        assert config.paper_cache_bytes() == 272 * 1024

    def test_paper_cache_is_1_128_of_full_table(self):
        config = SSDConfig(logical_pages=512 * 1024 * 1024 // 4096)
        ratio = config.paper_cache_bytes() / config.full_table_bytes
        assert ratio == pytest.approx(1 / 128, rel=0.07)

    def test_cache_bytes_for_fraction(self):
        config = SSDConfig(logical_pages=8192)
        assert (config.cache_bytes_for_fraction(1.0)
                == config.full_table_bytes)
        assert (config.cache_bytes_for_fraction(0.5)
                == config.full_table_bytes // 2)

    def test_cache_fraction_bounds(self):
        config = SSDConfig(logical_pages=1024)
        with pytest.raises(ConfigError):
            config.cache_bytes_for_fraction(0.0)
        with pytest.raises(ConfigError):
            config.cache_bytes_for_fraction(1.5)

    def test_scaled_replaces_fields(self):
        config = SSDConfig(logical_pages=1024)
        bigger = config.scaled(logical_pages=2048)
        assert bigger.logical_pages == 2048
        assert bigger.page_size == config.page_size


class TestSSDConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"logical_pages": 0},
        {"logical_pages": -5},
        {"page_size": 0},
        {"page_size": 1022},       # not a multiple of 4
        {"pages_per_block": 0},
        {"over_provision": -0.1},
        {"over_provision": 1.0},
        {"read_us": -1.0},
        {"gc_threshold_blocks": 0},
        {"gc_reserve_blocks": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            SSDConfig(**kwargs)


class TestCacheConfig:
    def test_entry_budget_subtracts_gtd(self):
        cache = CacheConfig(budget_bytes=1000)
        assert cache.entry_budget_bytes(gtd_bytes=200) == 800

    def test_budget_smaller_than_gtd_rejected(self):
        cache = CacheConfig(budget_bytes=100)
        with pytest.raises(ConfigError):
            cache.entry_budget_bytes(gtd_bytes=100)

    @pytest.mark.parametrize("kwargs", [
        {"budget_bytes": 0},
        {"budget_bytes": 100, "dftl_entry_bytes": 0},
        {"budget_bytes": 100, "tpftl_entry_bytes": -1},
        {"budget_bytes": 100, "tpftl_node_bytes": -1},
        {"budget_bytes": 100, "sftl_dirty_buffer_fraction": 1.0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            CacheConfig(**kwargs)


class TestTPFTLConfig:
    def test_default_is_complete_tpftl(self):
        assert TPFTLConfig().monogram == "rsbc"

    @pytest.mark.parametrize("monogram,expected", [
        ("-", "-"),
        ("", "-"),
        ("b", "b"),
        ("bc", "bc"),
        ("rs", "rs"),
        ("rsbc", "rsbc"),
        ("RSBC", "rsbc"),   # case-insensitive
        ("cb", "bc"),       # canonical ordering
    ])
    def test_monogram_round_trip(self, monogram, expected):
        assert TPFTLConfig.from_monogram(monogram).monogram == expected

    def test_monogram_sets_flags(self):
        config = TPFTLConfig.from_monogram("rc")
        assert config.request_prefetch
        assert not config.selective_prefetch
        assert not config.batch_update
        assert config.clean_first

    def test_unknown_letters_rejected(self):
        with pytest.raises(ConfigError):
            TPFTLConfig.from_monogram("xyz")

    def test_threshold_validated(self):
        with pytest.raises(ConfigError):
            TPFTLConfig(selective_threshold=0)


class TestSimulationConfig:
    def test_channels_default_single(self):
        from repro.config import SimulationConfig
        assert SimulationConfig().channels == 1

    def test_channels_validated(self):
        from repro.config import SimulationConfig
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            SimulationConfig(channels=0)

    def test_default_cache_follows_paper_rule(self):
        sim = SimulationConfig(ssd=SSDConfig(logical_pages=8192))
        resolved = sim.resolved_cache()
        assert resolved.budget_bytes == sim.ssd.paper_cache_bytes()

    def test_explicit_cache_wins(self):
        sim = SimulationConfig(ssd=SSDConfig(logical_pages=8192),
                               cache=CacheConfig(budget_bytes=12345))
        assert sim.resolved_cache().budget_bytes == 12345


class TestNANDProfiles:
    def test_slc_is_table3(self):
        slc = SSDConfig.slc()
        assert (slc.read_us, slc.write_us, slc.erase_us) == \
            (25.0, 200.0, 1500.0)

    def test_generations_get_slower(self):
        slc, mlc, tlc = SSDConfig.slc(), SSDConfig.mlc(), SSDConfig.tlc()
        assert slc.write_us < mlc.write_us < tlc.write_us
        assert slc.read_us < mlc.read_us < tlc.read_us
        assert slc.erase_us < mlc.erase_us < tlc.erase_us

    def test_overrides_respected(self):
        mlc = SSDConfig.mlc(logical_pages=4096, write_us=800.0)
        assert mlc.logical_pages == 4096
        assert mlc.write_us == 800.0

    def test_profiles_validate_like_normal_configs(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            SSDConfig.tlc(logical_pages=0)
