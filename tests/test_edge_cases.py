"""Cross-cutting edge cases not covered by the per-module suites."""

import pytest

from repro.config import CacheConfig, SimulationConfig, SSDConfig
from repro.ftl import make_ftl
from repro.ssd import simulate
from repro.types import Op, Request, Trace

from conftest import make_trace


class TestSingleTranslationPageDevice:
    """A device whose whole table fits one translation page: every
    geometry special case (vtpn always 0, short last page) at once."""

    @pytest.fixture
    def config(self):
        # 40 pages of 256B -> one 64-entry translation page, short
        return SimulationConfig(ssd=SSDConfig(
            logical_pages=40, page_size=256, pages_per_block=8))

    @pytest.mark.parametrize("name", ["dftl", "tpftl"])
    def test_runs_and_stays_consistent(self, config, name):
        ftl = make_ftl(name, config)
        for lpn in list(range(40)) * 3:
            ftl.write_page(lpn)
        ftl.flush()
        ftl.check_consistency()

    def test_tpftl_prefetch_clipped_at_short_page_end(self, config):
        from repro.config import TPFTLConfig
        import dataclasses
        cfg = dataclasses.replace(
            config, tpftl=TPFTLConfig.from_monogram("r"))
        ftl = make_ftl("tpftl", cfg)
        # request runs past the end of the (short) translation page
        request = Request(arrival=0.0, op=Op.READ, lpn=36, npages=4)
        ftl.serve_request(request)
        ftl.assert_invariants()


class TestMinimalBlockGeometry:
    def test_two_page_blocks(self):
        config = SimulationConfig(ssd=SSDConfig(
            logical_pages=64, page_size=256, pages_per_block=2))
        ftl = make_ftl("optimal", config)
        for lpn in list(range(64)) * 4:
            ftl.write_page(lpn)
        ftl.check_consistency()


class TestEmptyAndDegenerateTraces:
    def test_empty_trace(self, tiny_config):
        ftl = make_ftl("tpftl", tiny_config)
        result = simulate(ftl, Trace(logical_pages=512))
        assert result.requests == 0
        assert result.response.count == 0
        assert result.metrics.user_page_accesses == 0

    def test_warmup_longer_than_trace(self, tiny_config):
        ftl = make_ftl("dftl", tiny_config)
        trace = make_trace([(Op.READ, 0, 1)])
        result = simulate(ftl, trace, warmup_requests=10)
        assert result.requests == 0

    def test_single_request_trace(self, tiny_config):
        ftl = make_ftl("sftl", SimulationConfig(
            ssd=tiny_config.ssd, cache=CacheConfig(budget_bytes=2048)))
        result = simulate(ftl, make_trace([(Op.WRITE, 100, 1)]))
        assert result.metrics.user_page_writes == 1

    def test_whole_device_request(self, tiny_config):
        ftl = make_ftl("optimal", tiny_config)
        trace = make_trace([(Op.READ, 0, 512)])
        result = simulate(ftl, trace)
        assert result.metrics.user_page_reads == 512


class TestRepeatedHammering:
    """One LPN rewritten thousands of times: the degenerate hot page."""

    @pytest.mark.parametrize("name", ["dftl", "tpftl"])
    def test_single_page_hammer(self, tiny_config, name):
        ftl = make_ftl(name, tiny_config)
        for _ in range(2000):
            ftl.write_page(7)
        # one hot entry: everything after the first access hits
        assert ftl.metrics.hit_ratio > 0.99
        ftl.check_consistency()

    def test_hammer_gc_reclaims_everything(self, tiny_config):
        ftl = make_ftl("optimal", tiny_config)
        for _ in range(2000):
            ftl.write_page(7)
        # hammered blocks are fully invalid at collection: no migration
        m = ftl.metrics
        assert m.gc_data_collections > 0
        assert m.mean_valid_in_data_victims < 2.0


class TestCacheExactlyOneUnit:
    def test_dftl_single_entry_cache(self):
        ssd = SSDConfig(logical_pages=512, page_size=256,
                        pages_per_block=8)
        config = SimulationConfig(
            ssd=ssd, cache=CacheConfig(budget_bytes=ssd.gtd_bytes + 8))
        ftl = make_ftl("dftl", config)
        assert ftl.capacity_entries == 1
        ftl.write_page(0)
        ftl.write_page(100)  # evicts the only (dirty) entry
        assert ftl.metrics.dirty_replacements == 1
        ftl.flush()
        ftl.check_consistency()

    def test_tpftl_single_entry_cache(self):
        ssd = SSDConfig(logical_pages=512, page_size=256,
                        pages_per_block=8)
        config = SimulationConfig(
            ssd=ssd, cache=CacheConfig(budget_bytes=ssd.gtd_bytes + 14))
        ftl = make_ftl("tpftl", config)
        ftl.write_page(0)
        ftl.write_page(100)
        ftl.read_page(200)
        ftl.assert_invariants()
        ftl.flush()
        ftl.check_consistency()


class TestArrivalEdgeCases:
    def test_all_simultaneous_arrivals(self, tiny_config):
        ftl = make_ftl("optimal", tiny_config)
        requests = [Request(arrival=0.0, op=Op.READ, lpn=i, npages=1)
                    for i in range(20)]
        result = simulate(ftl, Trace(requests=requests,
                                     logical_pages=512))
        # pure serialisation: mean response = (n+1)/2 * service
        assert result.response.mean == pytest.approx(
            (20 + 1) / 2 * 25.0)

    def test_far_future_arrivals_never_queue(self, tiny_config):
        ftl = make_ftl("optimal", tiny_config)
        requests = [Request(arrival=i * 1e9, op=Op.WRITE, lpn=i,
                            npages=1) for i in range(10)]
        result = simulate(ftl, Trace(requests=requests,
                                     logical_pages=512))
        assert result.response.mean_queue_delay == 0.0
