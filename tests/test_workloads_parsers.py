"""The SPC and MSR trace parsers against hand-written fixtures."""

import pytest

from repro.errors import WorkloadError
from repro.types import Op
from repro.workloads import parse_msr_lines, parse_spc_lines
from repro.workloads.msr import load_msr_trace
from repro.workloads.spc import load_spc_trace

SPC_LINES = [
    "0,24,8192,r,0.5",          # 12KB offset? no: LBA 24 * 512 = 12288
    "1,0,4096,W,0.75",
    "",
    "# comment",
    "0,16,512,r,1.0",
]

MSR_LINES = [
    "128166372003061629,host,0,Read,8192,8192,100",
    "128166372003061729,host,0,Write,0,4096,100",
    "128166372003062629,host,1,Read,0,4096,100",  # other disk
]


class TestSPCParser:
    def test_basic_parse(self):
        trace = parse_spc_lines(SPC_LINES)
        assert len(trace) == 3
        first = trace[0]
        assert first.op is Op.READ
        # LBA 24 -> byte 12288 -> page 3; 8KB spans pages 3..4
        assert first.lpn == 3
        assert first.npages == 2

    def test_opcode_case_insensitive(self):
        trace = parse_spc_lines(SPC_LINES)
        assert trace[1].op is Op.WRITE

    def test_timestamps_rebased_to_microseconds(self):
        trace = parse_spc_lines(SPC_LINES)
        assert trace[0].arrival == 0.0
        assert trace[1].arrival == pytest.approx(0.25e6)

    def test_sub_page_request_rounds_to_one_page(self):
        trace = parse_spc_lines(SPC_LINES)
        small = trace[2]
        assert small.npages == 1
        assert small.lpn == 2  # byte 8192

    def test_asu_filter(self):
        trace = parse_spc_lines(SPC_LINES, asu_filter=1)
        assert len(trace) == 1
        assert trace[0].op is Op.WRITE

    def test_wrap_pages(self):
        trace = parse_spc_lines(["0,1000000,4096,r,0.0"], wrap_pages=64)
        assert trace[0].lpn < 64
        assert trace.logical_pages == 64

    def test_malformed_line_rejected(self):
        with pytest.raises(WorkloadError):
            parse_spc_lines(["1,2,3"])
        with pytest.raises(WorkloadError):
            parse_spc_lines(["0,x,4096,r,0.0"])
        with pytest.raises(WorkloadError):
            parse_spc_lines(["0,0,4096,z,0.0"])

    def test_zero_size_skipped(self):
        trace = parse_spc_lines(["0,0,0,r,0.0", "0,0,4096,r,1.0"])
        assert len(trace) == 1

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "fin.spc"
        path.write_text("\n".join(SPC_LINES))
        trace = load_spc_trace(path)
        assert trace.name == "fin"
        assert len(trace) == 3


class TestMSRParser:
    def test_basic_parse(self):
        trace = parse_msr_lines(MSR_LINES)
        assert len(trace) == 3
        assert trace[0].op is Op.READ
        assert trace[0].lpn == 2       # byte 8192
        assert trace[0].npages == 2    # 8KB

    def test_filetime_converted_to_microseconds(self):
        trace = parse_msr_lines(MSR_LINES)
        assert trace[0].arrival == 0.0
        assert trace[1].arrival == pytest.approx(10.0)  # 100 ticks

    def test_disk_filter(self):
        trace = parse_msr_lines(MSR_LINES, disk_filter=1)
        assert len(trace) == 1

    def test_type_validation(self):
        with pytest.raises(WorkloadError):
            parse_msr_lines(["1,h,0,Trim,0,4096,1"])

    def test_field_count_validation(self):
        with pytest.raises(WorkloadError):
            parse_msr_lines(["1,h,0,Read,0"])

    def test_wrap_pages(self):
        line = "1,h,0,Write,999999999999,4096,1"
        trace = parse_msr_lines([line], wrap_pages=128)
        assert trace[0].lpn < 128

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "ts_0.csv"
        path.write_text("\n".join(MSR_LINES))
        trace = load_msr_trace(path)
        assert trace.name == "ts_0"
        assert len(trace) == 3


class TestParsedTracesRun:
    def test_spc_trace_drives_simulation(self, tiny_config):
        from repro.ftl import DFTL
        from repro.ssd import simulate
        trace = parse_spc_lines(SPC_LINES, wrap_pages=512)
        result = simulate(DFTL(tiny_config), trace)
        assert result.metrics.user_page_accesses > 0
