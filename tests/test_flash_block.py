"""Unit tests for the NAND block model and its invariants."""

import pytest

from repro.errors import EraseError, ProgramError
from repro.flash.block import Block
from repro.types import BlockKind, PageState


@pytest.fixture
def block() -> Block:
    blk = Block(block_id=3, pages_per_block=4)
    blk.kind = BlockKind.DATA
    return blk


class TestProgramming:
    def test_program_is_sequential(self, block):
        assert block.program(meta=100) == 0
        assert block.program(meta=101) == 1
        assert block.program(meta=102) == 2

    def test_program_records_meta_and_state(self, block):
        offset = block.program(meta=42)
        assert block.meta(offset) == 42
        assert block.state(offset) is PageState.VALID

    def test_program_updates_counts(self, block):
        block.program(meta=1)
        assert block.valid_count == 1
        assert block.free_count == 3

    def test_program_full_block_fails(self, block):
        for i in range(4):
            block.program(meta=i)
        assert block.is_full
        with pytest.raises(ProgramError):
            block.program(meta=99)

    def test_program_unallocated_block_fails(self):
        blk = Block(block_id=0, pages_per_block=4)
        with pytest.raises(ProgramError):
            blk.program(meta=1)

    def test_program_stamps_sequence(self, block):
        block.program(meta=1, seq=77)
        assert block.last_program_seq == 77


class TestInvalidation:
    def test_invalidate_flips_state(self, block):
        offset = block.program(meta=9)
        block.invalidate(offset)
        assert block.state(offset) is PageState.INVALID
        assert block.valid_count == 0
        assert block.invalid_count == 1
        assert block.meta(offset) is None

    def test_invalidate_free_page_fails(self, block):
        with pytest.raises(ProgramError):
            block.invalidate(0)

    def test_double_invalidate_fails(self, block):
        offset = block.program(meta=9)
        block.invalidate(offset)
        with pytest.raises(ProgramError):
            block.invalidate(offset)


class TestErase:
    def test_erase_requires_no_valid_pages(self, block):
        block.program(meta=1)
        with pytest.raises(EraseError):
            block.erase()

    def test_erase_resets_everything(self, block):
        for i in range(4):
            block.program(meta=i)
        for i in range(4):
            block.invalidate(i)
        block.erase()
        assert block.kind is BlockKind.FREE
        assert block.erase_count == 1
        assert block.free_count == 4
        assert block.valid_count == 0
        assert block.invalid_count == 0
        assert all(block.state(i) is PageState.FREE for i in range(4))

    def test_erase_count_accumulates(self, block):
        for round_ in range(3):
            block.kind = BlockKind.DATA
            offset = block.program(meta=round_)
            block.invalidate(offset)
            block.erase()
        assert block.erase_count == 3


class TestQueries:
    def test_valid_offsets_ascending(self, block):
        block.program(meta=1)
        block.program(meta=2)
        block.program(meta=3)
        block.invalidate(1)
        assert block.valid_offsets() == [0, 2]

    def test_fresh_block_is_free_kind(self):
        assert Block(0, 4).is_free
