"""The parallel experiment runner and its persistent run cache.

Everything here runs at a deliberately tiny scale (hundreds of requests
on KB-sized devices) so the whole module — including the real
process-pool fan-out — stays fast.
"""

from __future__ import annotations

import dataclasses
import json
import warnings

import pytest

from repro.config import TPFTLConfig
from repro.errors import ExperimentError
from repro.experiments import ExperimentScale
from repro.experiments.common import (clear_matrix_cache, run_matrix,
                                      run_one)
from repro.experiments.runner import (CACHE_SCHEMA, ParallelRunner,
                                      RunCache, RunSpec, configure_runner,
                                      decode_result, encode_result,
                                      execute_spec, get_runner,
                                      reset_runner, resolve_jobs)

TINY = ExperimentScale(
    name="tiny", num_requests=900, warmup_requests=200,
    financial_pages=2048, msr_pages=4096,
    cache_fractions=(1 / 32, 1.0), sample_interval=300)


@pytest.fixture(autouse=True)
def _fresh_default_runner(tmp_path):
    """Point the default runner at a throwaway cache for every test."""
    configure_runner(jobs=1, cache_dir=tmp_path / "default-cache")
    yield
    reset_runner()
    clear_matrix_cache()


def tiny_spec(**overrides) -> RunSpec:
    params = dict(workload="financial1", ftl="dftl", scale=TINY,
                  sample_interval=300)
    params.update(overrides)
    return RunSpec(**params)


class TestRunSpecDigest:
    def test_digest_stable_for_equal_specs(self):
        assert tiny_spec().digest == tiny_spec().digest

    def test_digest_changes_with_every_field(self):
        base = tiny_spec()
        variants = [
            tiny_spec(workload="msr-ts"),
            tiny_spec(ftl="tpftl"),
            tiny_spec(scale=dataclasses.replace(TINY, num_requests=901)),
            tiny_spec(cache_fraction=0.5),
            tiny_spec(tpftl=TPFTLConfig.from_monogram("bc")),
            tiny_spec(seed=99),
            tiny_spec(sample_interval=0),
            tiny_spec(channels=4),
        ]
        digests = {base.digest} | {spec.digest for spec in variants}
        assert len(digests) == len(variants) + 1

    def test_digest_survives_pickling_shape(self):
        # canonical() must stay JSON-serialisable (the digest contract)
        text = json.dumps(tiny_spec().canonical(), sort_keys=True)
        assert "financial1" in text

    def test_scale_list_fractions_normalised(self):
        # regression: a list-built scale used to make the spec (and the
        # old _MATRIX_CACHE key) unhashable
        listy = ExperimentScale(name="tiny", num_requests=900,
                                warmup_requests=200,
                                financial_pages=2048, msr_pages=4096,
                                cache_fractions=[1 / 32, 1.0],
                                sample_interval=300)
        assert listy.cache_fractions == (1 / 32, 1.0)
        assert hash(listy) == hash(TINY)
        assert tiny_spec(scale=listy).digest == tiny_spec().digest
        assert {listy: "ok"}[TINY] == "ok"

    def test_channel_spec_labelled_and_executed(self):
        spec = tiny_spec(channels=4)
        assert "ch=4" in spec.label()
        assert "ch=" not in tiny_spec().label()
        result = execute_spec(spec)
        assert result.channels == 4

    def test_ablation_spec_builder(self):
        dftl = RunSpec.for_ablation("dftl", TINY)
        bare = RunSpec.for_ablation("-", TINY)
        assert dftl.ftl == "dftl" and dftl.tpftl is None
        assert bare.ftl == "tpftl"
        assert bare.tpftl.monogram == "-"


class TestResultCodec:
    def test_cache_round_trip_equals_fresh_run(self):
        spec = tiny_spec()
        fresh = execute_spec(spec)
        decoded = decode_result(encode_result(fresh))
        # field-for-field: dataclass equality covers metrics, response
        # (including samples), sampler and the faults dict
        assert decoded == fresh
        assert decoded.metrics == fresh.metrics
        assert decoded.response == fresh.response
        assert decoded.sampler == fresh.sampler
        assert decoded.summary() == fresh.summary()

    def test_round_trip_through_json_text(self):
        fresh = execute_spec(tiny_spec())
        decoded = decode_result(
            json.loads(json.dumps(encode_result(fresh))))
        assert decoded == fresh

    def test_dirty_histogram_keys_restored_as_ints(self):
        fresh = execute_spec(tiny_spec())
        assert fresh.sampler is not None
        decoded = decode_result(
            json.loads(json.dumps(encode_result(fresh))))
        assert all(isinstance(k, int)
                   for k in decoded.sampler.dirty_histogram)


class TestRunCache:
    def test_persists_across_cache_instances(self, tmp_path):
        spec = tiny_spec()
        result = execute_spec(spec)
        RunCache(tmp_path).put(spec, result, 1.5)
        entry = RunCache(tmp_path).get(spec)
        assert entry is not None
        assert entry[0] == result
        assert entry[1] == 1.5

    def test_corrupt_file_is_quarantined_not_fatal(self, tmp_path):
        spec = tiny_spec()
        cache = RunCache(tmp_path)
        cache.put(spec, execute_spec(spec), 0.1)
        path = tmp_path / f"{spec.digest}.json"
        path.write_text("{ not json", encoding="utf-8")
        fresh_cache = RunCache(tmp_path)
        assert fresh_cache.get(spec) is None
        assert fresh_cache.stats()["corrupt"] == 1
        assert fresh_cache.invalid == 0
        # the evidence is moved aside, not clobbered by a recompute
        assert not path.exists()
        quarantined = tmp_path / RunCache.CORRUPT_DIR / path.name
        assert quarantined.read_text(encoding="utf-8") == "{ not json"

    def test_stale_schema_is_a_miss(self, tmp_path):
        spec = tiny_spec()
        cache = RunCache(tmp_path)
        cache.put(spec, execute_spec(spec), 0.1)
        path = tmp_path / f"{spec.digest}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["schema"] = CACHE_SCHEMA + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert RunCache(tmp_path).get(spec) is None

    def test_stale_fingerprint_is_a_miss(self, tmp_path):
        spec = tiny_spec()
        cache = RunCache(tmp_path)
        cache.put(spec, execute_spec(spec), 0.1)
        path = tmp_path / f"{spec.digest}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["fingerprint"] = "0" * 64
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert RunCache(tmp_path).get(spec) is None

    def test_disabled_directory_keeps_memory_level(self):
        spec = tiny_spec()
        cache = RunCache(directory=False)
        assert cache.directory is None
        result = execute_spec(spec)
        cache.put(spec, result, 0.1)
        assert cache.get(spec)[0] == result  # L1 still works

    def test_wipe_removes_entries(self, tmp_path):
        spec = tiny_spec()
        cache = RunCache(tmp_path)
        cache.put(spec, execute_spec(spec), 0.1)
        assert cache.wipe() == 1
        assert list(tmp_path.glob("*.json")) == []

    def test_wipe_includes_quarantined_files(self, tmp_path):
        spec = tiny_spec()
        cache = RunCache(tmp_path)
        cache.put(spec, execute_spec(spec), 0.1)
        other = tiny_spec(ftl="tpftl")
        cache.put(other, execute_spec(other), 0.1)
        (tmp_path / f"{spec.digest}.json").write_text("torn",
                                                      encoding="utf-8")
        fresh = RunCache(tmp_path)
        assert fresh.get(spec) is None  # quarantines the torn file
        stats = fresh.stats()
        assert stats == {"hits": 0, "misses": 1, "stores": 0,
                         "invalid": 0, "corrupt": 1, "write_errors": 0}
        assert fresh.wipe() == 2  # the healthy entry + the quarantined one
        assert list(tmp_path.glob("*.json")) == []
        assert list((tmp_path / RunCache.CORRUPT_DIR).glob("*.json")) == []

    def test_unwritable_directory_counts_and_warns_once(self, tmp_path):
        # a file where the cache directory should be: every mkdir in
        # put() raises FileExistsError (an OSError), like a read-only
        # or otherwise broken results volume would
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("", encoding="utf-8")
        cache = RunCache(blocker)
        spec = tiny_spec()
        result = execute_spec(spec)
        with pytest.warns(RuntimeWarning, match="not.*writable"):
            cache.put(spec, result, 0.1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second put must stay silent
            cache.put(tiny_spec(ftl="tpftl"), result, 0.1)
        assert cache.stats()["write_errors"] == 2
        assert cache.stores == 0
        assert cache.get(spec)[0] == result  # L1 still serves the run


class TestParallelRunner:
    def test_parallel_equals_serial_for_fixed_seed(self, tmp_path):
        specs = [tiny_spec(ftl="dftl"), tiny_spec(ftl="tpftl"),
                 tiny_spec(workload="msr-ts", ftl="tpftl")]
        serial = ParallelRunner(jobs=1, cache=None).run_specs(specs)
        parallel = ParallelRunner(jobs=2, cache=None).run_specs(specs)
        for s, p in zip(serial, parallel):
            assert s == p
            assert s.metrics.hit_ratio == p.metrics.hit_ratio
            assert s.metrics.total_erases == p.metrics.total_erases
            assert s.response.mean == p.response.mean

    def test_warm_cache_performs_zero_simulations(self, tmp_path):
        specs = [tiny_spec(ftl="dftl"), tiny_spec(ftl="tpftl")]
        cold = ParallelRunner(jobs=2, cache=RunCache(tmp_path))
        cold_results = cold.run_specs(specs)
        assert cold.cache.stats()["misses"] == 2
        warm = ParallelRunner(jobs=2, cache=RunCache(tmp_path))
        warm_results = warm.run_specs(specs)
        stats = warm.cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 0
        assert warm_results == cold_results
        assert all(o.cached for o in warm.outcomes)

    def test_duplicate_specs_simulated_once(self, tmp_path):
        runner = ParallelRunner(jobs=1, cache=RunCache(tmp_path))
        results = runner.run_specs([tiny_spec(), tiny_spec()])
        assert results[0] is results[1]
        assert runner.cache.stats()["misses"] == 1

    def test_map_parallel_matches_serial(self):
        items = [(3,), (-4,), (5,)]
        assert (ParallelRunner(jobs=2).map(abs, items)
                == ParallelRunner(jobs=1).map(abs, items)
                == [3, 4, 5])

    def test_bench_report_shape(self, tmp_path):
        runner = ParallelRunner(jobs=1, cache=RunCache(tmp_path))
        runner.run_specs([tiny_spec()])
        runner.run_specs([tiny_spec()])  # warm: a hit
        report = runner.bench_report()
        assert report["bench"] == "runner"
        assert report["totals"]["cells"] == 2
        assert report["totals"]["cache_hits"] == 1
        assert report["totals"]["wall_clock_s"] > 0
        assert len(report["cells"]) == 2
        assert {"digest", "label", "elapsed_s", "cached"} \
            <= set(report["cells"][0])
        target = runner.write_bench(tmp_path / "BENCH_runner.json")
        assert json.loads(target.read_text())["totals"]["cells"] == 2

    def test_jobs_resolution(self, monkeypatch):
        assert resolve_jobs(3) == 3
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4
        monkeypatch.delenv("REPRO_JOBS")
        assert resolve_jobs() == 1
        with pytest.raises(ExperimentError):
            resolve_jobs(0)
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ExperimentError):
            resolve_jobs()

    @pytest.mark.parametrize("value", ["", "   "])
    def test_blank_jobs_env_means_serial(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_JOBS", value)
        assert resolve_jobs() == 1

    @pytest.mark.parametrize("value", ["abc", "2.5", "0x4", "two"])
    def test_malformed_jobs_env_rejected(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_JOBS", value)
        with pytest.raises(ExperimentError, match="must be an integer"):
            resolve_jobs()

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_nonpositive_jobs_env_rejected(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_JOBS", value)
        with pytest.raises(ExperimentError, match="must be >= 1"):
            resolve_jobs()


class TestDefaultRunnerIntegration:
    def test_run_matrix_served_from_cache_on_rerun(self):
        matrix = run_matrix(TINY, workloads=("financial1",),
                            ftls=("dftl", "tpftl"))
        runner = get_runner()
        assert runner.cache.stats()["misses"] == 2
        again = run_matrix(TINY, workloads=("financial1",),
                           ftls=("dftl", "tpftl"))
        assert runner.cache.stats()["misses"] == 2  # no new simulations
        assert again == matrix

    def test_run_one_routes_through_cache(self):
        first = run_one("financial1", "dftl", TINY)
        second = run_one("financial1", "dftl", TINY)
        assert first == second
        assert get_runner().cache.stats()["hits"] >= 1

    def test_clear_matrix_cache_shim_clears_memory_only(self):
        run_one("financial1", "dftl", TINY)
        runner = get_runner()
        clear_matrix_cache()
        assert len(runner.cache._memory) == 0
        # disk level still warm: rerun is a hit, not a simulation
        misses_before = runner.cache.stats()["misses"]
        run_one("financial1", "dftl", TINY)
        assert runner.cache.stats()["misses"] == misses_before
