"""Shared fixtures: tiny device geometries that keep tests fast.

The *tiny* geometry shrinks pages to 256B so one translation page holds
64 entries and the device spans 8 translation pages — enough structure
to exercise every FTL mechanism (multi-node caches, GC of both block
kinds, prefetch page-boundary clipping) while each test runs in
milliseconds.
"""

from __future__ import annotations

import random

import pytest

from repro.config import (CacheConfig, SanitizerConfig, SimulationConfig,
                          SSDConfig)
from repro.types import Op, Request, Trace


@pytest.fixture
def tiny_ssd() -> SSDConfig:
    return SSDConfig(logical_pages=512, page_size=256, pages_per_block=8)


@pytest.fixture
def tiny_config(tiny_ssd: SSDConfig) -> SimulationConfig:
    return SimulationConfig(ssd=tiny_ssd)


@pytest.fixture
def roomy_config(tiny_ssd: SSDConfig) -> SimulationConfig:
    """Same geometry with a cache big enough for page-granular FTLs."""
    return SimulationConfig(
        ssd=tiny_ssd,
        cache=CacheConfig(budget_bytes=2048))


@pytest.fixture
def sanitized_config(tiny_ssd: SSDConfig) -> SimulationConfig:
    """Roomy config with FTLSan armed at full rate (checks every op)."""
    return SimulationConfig(
        ssd=tiny_ssd,
        cache=CacheConfig(budget_bytes=2048),
        sanitizer=SanitizerConfig(enabled=True, interval=1,
                                  full_every=32))


def make_trace(ops, logical_pages: int = 512, name: str = "test",
               spacing_us: float = 100.0) -> Trace:
    """Build a trace from (op, lpn, npages) tuples with even arrivals."""
    requests = []
    for index, (op, lpn, npages) in enumerate(ops):
        requests.append(Request(arrival=index * spacing_us, op=op,
                                lpn=lpn, npages=npages))
    return Trace(requests=requests, logical_pages=logical_pages,
                 name=name)


def random_ops(count: int, logical_pages: int, seed: int = 0,
               write_ratio: float = 0.7, max_pages: int = 4):
    """Deterministic random (op, lpn, npages) tuples for stress tests."""
    rng = random.Random(seed)
    ops = []
    for _ in range(count):
        op = Op.WRITE if rng.random() < write_ratio else Op.READ
        npages = rng.randint(1, max_pages)
        lpn = rng.randrange(logical_pages - npages)
        ops.append((op, lpn, npages))
    return ops
