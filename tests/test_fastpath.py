"""The batched execution core: parity with the reference path.

The fast path's contract is *field-for-field identity*: for any run the
reference path can execute, :func:`repro.ssd.run_fast` must produce a
:class:`RunResult` whose JSON encoding — the exact representation the
run cache persists and digests — is byte-identical.  The tests here
diff the two paths through that digest layer across the tier-1
workload x FTL matrix, the multi-channel device model, background GC
and sanitized runs, plus the regression tests for the accounting and
sampling bugs fixed alongside the fast path:

* ``CacheSampler.maybe_sample`` previously fired on every request after
  a multi-page request jumped the access counter past several
  boundaries at once (catch-up oversampling);
* ``RunResult.gc_time_fraction`` previously divided by request service
  time only, so background GC could push the "fraction" past 1.
"""

import dataclasses
import hashlib
import json
import random

import pytest

from repro.config import CacheConfig, SimulationConfig, SSDConfig
from repro.errors import FlashError
from repro.experiments.common import ExperimentScale
from repro.experiments.runner import (RunSpec, decode_result,
                                      encode_result, execute_spec,
                                      fastpath_enabled)
from repro.ftl import OptimalFTL, make_ftl
from repro.metrics import CacheSampler
from repro.ssd import SSDevice, run_fast
from repro.types import Op, Request, Trace

from conftest import make_trace, random_ops

#: CI-sized cells: big enough to cycle GC on every FTL, small enough
#: that the full parity matrix stays a few seconds per cell
PARITY_SCALE = ExperimentScale(num_requests=2_500, warmup_requests=500)

TIER1_WORKLOADS = ("financial1", "financial2", "msr-src", "msr-ts")
FTLS = ("dftl", "tpftl", "optimal")


def digest(result) -> str:
    """The parity key: sha256 of the run cache's JSON encoding.

    Byte-identical encodings mean every field the cache can observe —
    metrics, response statistics (including the Welford internals),
    sampler series, timings, fault counters — is identical.
    """
    payload = json.dumps(encode_result(result), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_both(spec: RunSpec):
    """Execute one cell through both cores and return the results."""
    reference = execute_spec(spec, fast=False)
    fast = execute_spec(spec, fast=True)
    return reference, fast


class TestTier1Parity:
    """Reference and fast paths agree on every tier-1 cell."""

    @pytest.mark.parametrize("workload", TIER1_WORKLOADS)
    @pytest.mark.parametrize("ftl", FTLS)
    def test_cell_parity(self, workload, ftl):
        spec = RunSpec(workload=workload, ftl=ftl, scale=PARITY_SCALE,
                       sample_interval=400)
        reference, fast = run_both(spec)
        assert digest(reference) == digest(fast)

    def test_parity_survives_decode_roundtrip(self):
        spec = RunSpec(workload="financial2", ftl="dftl",
                       scale=PARITY_SCALE, sample_interval=400)
        reference, fast = run_both(spec)
        decoded = decode_result(encode_result(fast))
        assert digest(decoded) == digest(reference)

    def test_multichannel_parity(self):
        spec = RunSpec(workload="financial2", ftl="dftl",
                       scale=PARITY_SCALE, channels=4)
        reference, fast = run_both(spec)
        assert reference.channels == fast.channels == 4
        assert digest(reference) == digest(fast)

    def test_fastpath_is_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
        assert fastpath_enabled()
        monkeypatch.setenv("REPRO_FASTPATH", "reference")
        assert not fastpath_enabled()
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        assert fastpath_enabled()


class TestDeviceLevelParity:
    """run_fast against DeviceModel.run on hand-built devices."""

    def _trace(self, count=1_500, seed=11):
        return make_trace(random_ops(count, 512, seed=seed))

    def test_warmup_parity(self, roomy_config):
        results = []
        for fast in (False, True):
            ftl = make_ftl("dftl", roomy_config)
            device = SSDevice(ftl, sample_interval=200)
            runner = run_fast if fast else type(device).run
            results.append(runner(device, self._trace(),
                                  warmup_requests=300))
        assert digest(results[0]) == digest(results[1])

    def test_background_gc_parity(self, tiny_config):
        trace = bursty_write_trace(bursts=60)
        results = []
        for fast in (False, True):
            device = SSDevice(OptimalFTL(tiny_config),
                              background_gc=True)
            runner = run_fast if fast else type(device).run
            results.append(runner(device, trace))
        reference, fast = results
        assert reference.background_collections > 0
        assert digest(reference) == digest(fast)

    def test_fault_plan_falls_back_to_reference(self):
        ssd = SSDConfig(logical_pages=512, page_size=256,
                        pages_per_block=8, read_error_rate=0.01)
        config = SimulationConfig(ssd=ssd)
        trace = self._trace(count=600)
        results = []
        for fast in (False, True):
            device = SSDevice(OptimalFTL(config))
            runner = run_fast if fast else type(device).run
            results.append(runner(device, trace))
        assert digest(results[0]) == digest(results[1])

    def test_fast_mode_refuses_live_fault_plan(self):
        ssd = SSDConfig(logical_pages=512, page_size=256,
                        pages_per_block=8, read_error_rate=0.01)
        ftl = OptimalFTL(SimulationConfig(ssd=ssd))
        with pytest.raises(FlashError):
            ftl.flash.enter_fast_mode()  # tp: allow=TP301 - must raise

    def test_sanitizer_sees_every_op(self, sanitized_config):
        """FTLSan runs in the policy slice: full per-op coverage."""
        ops = random_ops(800, 512, seed=5)
        trace = make_trace(ops)
        ftl = make_ftl("tpftl", sanitized_config)
        device = SSDevice(ftl)
        run_fast(device, trace)
        assert ftl.sanitizer is not None
        assert ftl.sanitizer.op_seq == sum(n for _, _, n in ops)

    def test_fast_mode_exits_after_run(self, roomy_config):
        ftl = make_ftl("dftl", roomy_config)
        device = SSDevice(ftl)
        run_fast(device, self._trace(count=200))
        assert not ftl.flash.fast_mode
        # the flash is reusable on the reference path afterwards
        device.run(self._trace(count=50, seed=12))

    def test_fast_mode_contract_survives_mid_run_exception(
            self, roomy_config, monkeypatch):
        """The runtime mirror of the TP301 typestate rule: a fault in
        the serve loop must leave the device exactly as a reference-
        path fault would — fast mode off, the pending fast-mode
        counters folded exactly once, and a follow-up reference run
        digest-identical between the two abort histories."""
        trace = self._trace(count=400)
        follow_up = self._trace(count=120, seed=21)

        def exploding(ftl, after):
            original, state = type(ftl).serve_request, {"served": 0}

            def serving(request):
                state["served"] += 1
                if state["served"] == after:
                    raise RuntimeError("injected mid-run fault")
                return original(ftl, request)
            return serving

        digests = []
        for fast in (False, True):
            ftl = make_ftl("dftl", roomy_config)
            device = SSDevice(ftl)
            monkeypatch.setattr(ftl, "serve_request",
                                exploding(ftl, after=151))
            folds = {"n": 0}
            original_fold = ftl.flash.fold_stats

            def counting_fold(original_fold=original_fold,
                              folds=folds):
                folds["n"] += 1
                original_fold()
            monkeypatch.setattr(ftl.flash, "fold_stats", counting_fold)
            runner = run_fast if fast else type(device).run
            with pytest.raises(RuntimeError, match="injected"):
                runner(device, trace)
            assert not ftl.flash.fast_mode
            # the finally-block exit folds the batched counters once;
            # the reference path has nothing pending to fold
            assert folds["n"] == (1 if fast else 0)
            digests.append(digest(device.run(follow_up)))
        assert digests[0] == digests[1]


def bursty_write_trace(pages=512, bursts=40, burst_len=20,
                       gap_us=50_000.0, seed=3) -> Trace:
    """Write bursts separated by idle gaps (drives background GC)."""
    rng = random.Random(seed)
    requests = []
    clock = 0.0
    for _ in range(bursts):
        for _ in range(burst_len):
            clock += 50.0
            requests.append(Request(arrival=clock, op=Op.WRITE,
                                    lpn=rng.randrange(pages), npages=1))
        clock += gap_us
    return Trace(requests=requests, logical_pages=pages)


class TestGCTimeFractionInvariant:
    """Regression: background GC used to push the fraction past 1."""

    @pytest.mark.parametrize("fast", (False, True))
    def test_fraction_bounded_with_background_gc(self, tiny_config,
                                                 fast):
        device = SSDevice(OptimalFTL(tiny_config), background_gc=True)
        trace = bursty_write_trace(bursts=80)
        runner = run_fast if fast else type(device).run
        result = runner(device, trace)
        # the setup reproduces the bug: plenty of background GC time
        # relative to request service time
        assert result.background_gc_time_us > 0.0
        assert result.gc_time_us >= result.background_gc_time_us
        assert 0.0 <= result.gc_time_fraction <= 1.0
        # the old denominator (request service time only) blows past 1
        assert (result.gc_time_us / result.service_time_us) > 1.0

    def test_background_time_disjoint_from_service(self, tiny_config):
        device = SSDevice(OptimalFTL(tiny_config), background_gc=True)
        result = device.run(bursty_write_trace(bursts=80))
        # foreground GC is part of service time; background GC is not
        assert result.service_time_us > 0.0
        assert (result.gc_time_us
                <= result.service_time_us + result.background_gc_time_us)


class TestSamplerCatchUp:
    """Regression: multi-page jumps used to trigger oversampling."""

    def test_multiboundary_jump_samples_once(self):
        sampler = CacheSampler(interval=10)
        # one giant request jumps the counter across 5 boundaries
        assert sampler.maybe_sample(52, [(4, 1)])
        assert len(sampler.samples) == 1
        # the very next requests must NOT all sample (the old bug:
        # _next_at lagged at 20 and every call >= 20 fired)
        assert not sampler.maybe_sample(53, [(4, 1)])
        assert not sampler.maybe_sample(59, [(4, 1)])
        assert sampler.maybe_sample(60, [(4, 1)])
        assert [s.access_number for s in sampler.samples] == [52, 60]

    def test_exact_boundary_keeps_cadence(self):
        sampler = CacheSampler(interval=10)
        fired = [n for n in range(1, 51)
                 if sampler.maybe_sample(n, [(1, 0)])]
        assert fired == [10, 20, 30, 40, 50]

    def test_due_matches_maybe_sample(self):
        probe = CacheSampler(interval=7)
        mirror = CacheSampler(interval=7)
        jumps = [3, 7, 8, 20, 21, 22, 49, 50, 90]
        for n in jumps:
            would = probe.due(n)
            did = mirror.maybe_sample(n, [(1, 0)])
            assert would == did
            if did:
                probe.maybe_sample(n, [(1, 0)])

    def test_disabled_sampler_never_due(self):
        sampler = CacheSampler(interval=0)
        assert not sampler.due(10 ** 9)
        assert not sampler.maybe_sample(10 ** 9, [(1, 0)])


class TestVictimHeapEquivalence:
    """Fast-mode GC picks the same victims as the reference scan."""

    def test_greedy_selection_matches(self, tiny_config):
        ops = random_ops(2_000, 512, seed=21, write_ratio=0.9)
        trace = make_trace(ops)
        results = []
        for fast in (False, True):
            ftl = make_ftl("dftl", dataclasses.replace(
                tiny_config, cache=CacheConfig(budget_bytes=1024)))
            device = SSDevice(ftl)
            runner = run_fast if fast else type(device).run
            results.append((runner(device, trace), ftl))
        (ref_result, ref_ftl), (fast_result, fast_ftl) = results
        assert ref_result.metrics.gc_data_collections > 0
        assert digest(ref_result) == digest(fast_result)
        # physical end state matches block for block
        for ref_block, fast_block in zip(ref_ftl.flash.blocks,
                                         fast_ftl.flash.blocks):
            assert ref_block.erase_count == fast_block.erase_count
            assert ref_block.valid_count == fast_block.valid_count
            assert ref_block.invalid_count == fast_block.invalid_count
