"""Crash recovery: flash scans rebuild the exact live mapping."""

import random

import pytest

from repro.errors import FTLError
from repro.ftl import make_ftl
from repro.recovery import (recover, recovery_report, scan_flash,
                            verify_recovery)

from test_integration import ALL_FTLS, config_for


def stress(ftl, steps=400, seed=1):
    rng = random.Random(seed)
    for _ in range(steps):
        lpn = rng.randrange(512)
        if rng.random() < 0.7:
            ftl.write_page(lpn)
        else:
            ftl.read_page(lpn)


class TestScan:
    def test_prefilled_device_fully_recoverable(self, tiny_config):
        ftl = make_ftl("dftl", tiny_config)
        state = recover(ftl)
        assert state.mapped_pages() == ftl.ssd.logical_pages
        assert len(state.gtd) == ftl.geometry.translation_pages

    @pytest.mark.parametrize("name", ALL_FTLS)
    def test_recovery_matches_live_view_after_stress(self, name):
        ftl = make_ftl(name, config_for(name))
        stress(ftl)
        verify_recovery(ftl)

    def test_duplicate_lpn_detected(self, tiny_config):
        ftl = make_ftl("optimal", tiny_config)
        # forge a duplicate claim by programming a second page for LPN 0
        from repro.types import PageKind
        ftl.flash.program(PageKind.DATA, meta=0)
        with pytest.raises(FTLError):
            scan_flash(ftl.flash, ftl.ssd.logical_pages)

    def test_out_of_range_lpn_detected(self, tiny_config):
        ftl = make_ftl("optimal", tiny_config)
        from repro.types import PageKind
        ftl.flash.program(PageKind.DATA, meta=99999)
        with pytest.raises(FTLError):
            scan_flash(ftl.flash, ftl.ssd.logical_pages)

    def test_negative_lpn_detected(self, tiny_config):
        ftl = make_ftl("optimal", tiny_config)
        from repro.types import PageKind
        ftl.flash.program(PageKind.DATA, meta=-1)
        with pytest.raises(FTLError):
            scan_flash(ftl.flash, ftl.ssd.logical_pages)

    def test_gtd_double_claim_detected(self, tiny_config):
        """Two valid translation pages claiming one VTPN make recovery
        ambiguous, exactly like a duplicate LPN."""
        ftl = make_ftl("dftl", tiny_config)
        from repro.types import PageKind
        # the prefilled device already has a page for VTPN 0
        ftl.flash.program(PageKind.TRANSLATION, meta=0)
        with pytest.raises(FTLError, match="VTPN 0"):
            scan_flash(ftl.flash, ftl.ssd.logical_pages)

    def test_retired_blocks_are_skipped(self, tiny_config):
        """A retired block's leftover page states must not pollute the
        scan (its live data was migrated before retirement)."""
        ftl = make_ftl("dftl", tiny_config)
        stress(ftl, steps=200, seed=9)
        # force-retire exactly one GC victim: its erase "fails"
        fails = iter([True])
        ftl.flash.injector.erase_fails = (
            lambda: next(fails, False))
        stress(ftl, steps=200, seed=10)
        assert ftl.flash.retired_block_count == 1
        verify_recovery(ftl)

    def test_verify_recovery_raises_on_forged_mismatch(self, tiny_config):
        ftl = make_ftl("optimal", tiny_config)
        stress(ftl, steps=100, seed=2)
        # desynchronise the live table from flash
        ftl.flash_table[0], ftl.flash_table[1] = (
            ftl.flash_table[1], ftl.flash_table[0])
        with pytest.raises(FTLError, match="mismatch"):
            verify_recovery(ftl)


class TestReport:
    def test_clean_cache_has_no_stale_entries(self, tiny_config):
        ftl = make_ftl("dftl", tiny_config)
        stress(ftl)
        ftl.flush()
        report = recovery_report(ftl)
        assert report.stale_translation_entries == 0
        assert report.stale_fraction == 0.0

    def test_dirty_cache_shows_consistency_debt(self, tiny_config):
        ftl = make_ftl("dftl", tiny_config)
        ftl.write_page(0)  # dirty in cache, stale on flash
        report = recovery_report(ftl)
        assert report.stale_translation_entries >= 1
        assert report.recovered_pages == ftl.ssd.logical_pages

    def test_tpftl_batch_updates_shrink_debt(self, tiny_config):
        """The b technique's side benefit: fewer dirty entries in RAM
        means less to lose in a crash."""
        dftl = make_ftl("dftl", tiny_config)
        tpftl = make_ftl("tpftl", tiny_config)
        for ftl in (dftl, tpftl):
            stress(ftl, steps=600, seed=4)
        assert (recovery_report(tpftl).stale_translation_entries
                <= recovery_report(dftl).stale_translation_entries)

    def test_optimal_always_consistent_with_itself(self, tiny_config):
        ftl = make_ftl("optimal", tiny_config)
        stress(ftl)
        # optimal's flash_table IS its RAM table: scan equals it
        assert recovery_report(ftl).stale_translation_entries == 0
