"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


@pytest.mark.parametrize("exc", [
    errors.ConfigError, errors.FlashError, errors.ProgramError,
    errors.EraseError, errors.OutOfSpaceError, errors.ReadError,
    errors.DeviceWornOutError, errors.PowerLossError, errors.CacheError,
    errors.CacheCapacityError, errors.FTLError, errors.TranslationError,
    errors.WorkloadError, errors.ExperimentError, errors.RunnerError,
    errors.CellTimeoutError, errors.WorkerCrashError,
])
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_flash_sub_hierarchy():
    assert issubclass(errors.ProgramError, errors.FlashError)
    assert issubclass(errors.EraseError, errors.FlashError)
    assert issubclass(errors.OutOfSpaceError, errors.FlashError)
    assert issubclass(errors.ReadError, errors.FlashError)
    assert issubclass(errors.DeviceWornOutError, errors.FlashError)
    assert issubclass(errors.PowerLossError, errors.FlashError)


def test_reliability_errors_catchable_as_flash_errors():
    """Callers that guard flash operations with ``except FlashError``
    must see the fault-injection errors too."""
    for exc in (errors.ReadError, errors.DeviceWornOutError,
                errors.PowerLossError):
        with pytest.raises(errors.FlashError):
            raise exc("x")


def test_cache_sub_hierarchy():
    assert issubclass(errors.CacheCapacityError, errors.CacheError)


def test_translation_is_ftl_error():
    assert issubclass(errors.TranslationError, errors.FTLError)


def test_runner_sub_hierarchy():
    """Supervision failures must stay catchable as ExperimentError, so
    pre-supervision callers keep working unchanged."""
    assert issubclass(errors.RunnerError, errors.ExperimentError)
    assert issubclass(errors.CellTimeoutError, errors.RunnerError)
    assert issubclass(errors.WorkerCrashError, errors.RunnerError)
    assert issubclass(errors.MatrixFailureError, errors.RunnerError)


def test_matrix_failure_message_and_payload_round_trip():
    failure = errors.CellFailure(
        key="deadbeef", label="financial1:dftl",
        error_type="OSError", message="disk on fire",
        traceback="Traceback ...", attempts=3, elapsed_s=1.25,
        transient=True)
    assert errors.CellFailure.from_payload(failure.to_payload()) \
        == failure
    exc = errors.MatrixFailureError([failure])
    assert exc.failures == [failure]
    assert "1 cell quarantined" in str(exc)
    assert "financial1:dftl" in str(exc)
    with pytest.raises(errors.ExperimentError):
        raise exc


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.ProgramError("x")
