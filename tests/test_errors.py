"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


@pytest.mark.parametrize("exc", [
    errors.ConfigError, errors.FlashError, errors.ProgramError,
    errors.EraseError, errors.OutOfSpaceError, errors.ReadError,
    errors.DeviceWornOutError, errors.PowerLossError, errors.CacheError,
    errors.CacheCapacityError, errors.FTLError, errors.TranslationError,
    errors.WorkloadError, errors.ExperimentError,
])
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_flash_sub_hierarchy():
    assert issubclass(errors.ProgramError, errors.FlashError)
    assert issubclass(errors.EraseError, errors.FlashError)
    assert issubclass(errors.OutOfSpaceError, errors.FlashError)
    assert issubclass(errors.ReadError, errors.FlashError)
    assert issubclass(errors.DeviceWornOutError, errors.FlashError)
    assert issubclass(errors.PowerLossError, errors.FlashError)


def test_reliability_errors_catchable_as_flash_errors():
    """Callers that guard flash operations with ``except FlashError``
    must see the fault-injection errors too."""
    for exc in (errors.ReadError, errors.DeviceWornOutError,
                errors.PowerLossError):
        with pytest.raises(errors.FlashError):
            raise exc("x")


def test_cache_sub_hierarchy():
    assert issubclass(errors.CacheCapacityError, errors.CacheError)


def test_translation_is_ftl_error():
    assert issubclass(errors.TranslationError, errors.FTLError)


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.ProgramError("x")
