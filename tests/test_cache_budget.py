"""Unit tests for byte-budget accounting."""

import pytest

from repro.cache import ByteBudget
from repro.errors import CacheCapacityError, CacheError


class TestByteBudget:
    def test_charge_and_release(self):
        budget = ByteBudget(100)
        budget.charge(60)
        assert budget.used == 60
        assert budget.free == 40
        budget.release(20)
        assert budget.used == 40

    def test_fits(self):
        budget = ByteBudget(10)
        budget.charge(6)
        assert budget.fits(4)
        assert not budget.fits(5)

    def test_overcharge_rejected(self):
        budget = ByteBudget(10)
        with pytest.raises(CacheError):
            budget.charge(11)

    def test_over_release_rejected(self):
        budget = ByteBudget(10)
        budget.charge(5)
        with pytest.raises(CacheError):
            budget.release(6)

    def test_negative_amounts_rejected(self):
        budget = ByteBudget(10)
        with pytest.raises(CacheError):
            budget.charge(-1)
        with pytest.raises(CacheError):
            budget.release(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(CacheCapacityError):
            ByteBudget(0)

    def test_require_oversized_object(self):
        budget = ByteBudget(10)
        with pytest.raises(CacheCapacityError):
            budget.require(11)
        budget.require(10)  # exactly fits: fine
