"""Unit tests for GC victim policies and the wear leveler."""

import pytest

from repro.flash.block import Block
from repro.gc import CostBenefitPolicy, GreedyPolicy, WearLeveler
from repro.types import BlockKind


def make_block(block_id, pages=8, valid=0, invalid=0, erase_count=0,
               last_seq=0):
    block = Block(block_id, pages)
    block.kind = BlockKind.DATA
    for i in range(valid + invalid):
        block.program(meta=i, seq=last_seq)
    for i in range(invalid):
        block.invalidate(i)
    block.erase_count = erase_count
    return block


class TestGreedy:
    def test_picks_most_invalid(self):
        blocks = [make_block(0, invalid=2, valid=6),
                  make_block(1, invalid=5, valid=3),
                  make_block(2, invalid=4, valid=4)]
        assert GreedyPolicy().select(blocks).block_id == 1

    def test_skips_fully_valid_blocks(self):
        blocks = [make_block(0, valid=8)]
        assert GreedyPolicy().select(blocks) is None

    def test_empty_candidates(self):
        assert GreedyPolicy().select([]) is None

    def test_tie_breaks_to_lower_erase_count(self):
        blocks = [make_block(0, invalid=3, valid=1, erase_count=9),
                  make_block(1, invalid=3, valid=1, erase_count=2)]
        assert GreedyPolicy().select(blocks).block_id == 1


class TestCostBenefit:
    def test_fully_invalid_block_wins_immediately(self):
        blocks = [make_block(0, invalid=2, valid=6, last_seq=100),
                  make_block(1, invalid=8, valid=0, last_seq=100)]
        assert CostBenefitPolicy().select(blocks,
                                          now_seq=200).block_id == 1

    def test_prefers_older_blocks_at_equal_utilisation(self):
        old = make_block(0, invalid=4, valid=4, last_seq=10)
        young = make_block(1, invalid=4, valid=4, last_seq=190)
        assert CostBenefitPolicy().select([old, young],
                                          now_seq=200).block_id == 0

    def test_prefers_lower_utilisation_at_equal_age(self):
        lighter = make_block(0, invalid=6, valid=2, last_seq=100)
        heavier = make_block(1, invalid=2, valid=6, last_seq=100)
        assert CostBenefitPolicy().select([lighter, heavier],
                                          now_seq=200).block_id == 0

    def test_nothing_collectible(self):
        assert CostBenefitPolicy().select([make_block(0, valid=8)]) is None


class TestWearLeveler:
    def test_balanced_pool_nominates_nothing(self):
        blocks = [make_block(i, invalid=1, valid=1, erase_count=5)
                  for i in range(4)]
        assert WearLeveler(threshold=4).nominate(blocks) is None

    def test_nominates_coldest_beyond_threshold(self):
        hot = make_block(0, invalid=1, valid=1, erase_count=40)
        cold = make_block(1, invalid=1, valid=1, erase_count=2)
        mid = make_block(2, invalid=1, valid=1, erase_count=20)
        leveler = WearLeveler(threshold=10)
        assert leveler.nominate([hot, cold, mid]).block_id == 1
        assert leveler.forced_collections == 1

    def test_blank_cold_block_skipped(self):
        hot = make_block(0, invalid=1, valid=1, erase_count=40)
        blank = make_block(1, erase_count=0)  # no content to cycle
        assert WearLeveler(threshold=10).nominate([hot, blank]) is None

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            WearLeveler(threshold=0)
