"""Lifetime/endurance estimation from simulation runs."""

import pytest

from repro.errors import ConfigError
from repro.ftl import make_ftl
from repro.lifetime import (DEFAULT_PE_CYCLES, LifetimeEstimate,
                            estimate_lifetime)
from repro.ssd import simulate
from repro.types import Op

from conftest import make_trace


def run_workload(tiny_config, name="optimal", writes=600):
    ftl = make_ftl(name, tiny_config)
    ops = [(Op.WRITE, i % 64, 1) for i in range(writes)]
    result = simulate(ftl, make_trace(ops))
    return ftl, result


class TestEstimate:
    def test_basic_fields(self, tiny_config):
        ftl, run = run_workload(tiny_config)
        estimate = estimate_lifetime(run, tiny_config.ssd,
                                     flash=ftl.flash)
        assert estimate.user_bytes_written == 600 * 256
        assert estimate.erases == run.metrics.total_erases
        assert estimate.erase_budget == (
            tiny_config.ssd.physical_blocks * DEFAULT_PE_CYCLES)
        assert estimate.wear_imbalance >= 1.0

    def test_erases_per_gb_scales(self, tiny_config):
        _, run = run_workload(tiny_config)
        estimate = estimate_lifetime(run, tiny_config.ssd)
        expected = run.metrics.total_erases / (600 * 256 / 2**30)
        assert estimate.erases_per_gb == pytest.approx(expected)

    def test_projection_inverse_to_erases(self):
        a = LifetimeEstimate(user_bytes_written=1000, erases=10,
                             erase_budget=1000, wear_imbalance=1.0)
        b = LifetimeEstimate(user_bytes_written=1000, erases=20,
                             erase_budget=1000, wear_imbalance=1.0)
        assert a.projected_user_bytes == 2 * b.projected_user_bytes

    def test_no_erases_means_infinite(self):
        estimate = LifetimeEstimate(user_bytes_written=1000, erases=0,
                                    erase_budget=1000,
                                    wear_imbalance=1.0)
        assert estimate.projected_user_bytes == float("inf")

    def test_skew_shortens_lifetime(self):
        level = LifetimeEstimate(user_bytes_written=1000, erases=10,
                                 erase_budget=1000, wear_imbalance=1.0)
        skewed = LifetimeEstimate(user_bytes_written=1000, erases=10,
                                  erase_budget=1000, wear_imbalance=2.0)
        assert (skewed.projected_user_bytes_skewed
                == level.projected_user_bytes_skewed / 2)

    def test_relative_lifetime(self):
        a = LifetimeEstimate(user_bytes_written=1000, erases=10,
                             erase_budget=1000, wear_imbalance=1.0)
        b = LifetimeEstimate(user_bytes_written=1000, erases=20,
                             erase_budget=1000, wear_imbalance=1.0)
        assert a.relative_lifetime(b) == pytest.approx(2.0)

    def test_pe_cycles_validated(self, tiny_config):
        _, run = run_workload(tiny_config)
        with pytest.raises(ConfigError):
            estimate_lifetime(run, tiny_config.ssd, pe_cycles=0)


class TestFTLLifetimeOrdering:
    def test_tpftl_outlives_dftl_on_write_heavy(self, tiny_config):
        """Fewer translation writes -> fewer erases -> longer life."""
        import random
        rng = random.Random(6)
        ops = []
        for _ in range(2500):
            op = Op.WRITE if rng.random() < 0.8 else Op.READ
            ops.append((op, rng.randrange(512), 1))
        trace = make_trace(ops)
        estimates = {}
        for name in ("dftl", "tpftl"):
            ftl = make_ftl(name, tiny_config)
            run = simulate(ftl, trace)
            estimates[name] = estimate_lifetime(run, tiny_config.ssd,
                                                flash=ftl.flash)
        ratio = estimates["tpftl"].relative_lifetime(estimates["dftl"])
        assert ratio > 1.0
