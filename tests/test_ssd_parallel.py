"""The multi-channel device model extension."""

import pytest

from repro.errors import ConfigError
from repro.ftl import OptimalFTL
from repro.ssd.parallel import ChannelSSDevice
from repro.types import Op

from conftest import make_trace


class TestChannelDevice:
    def test_single_channel_matches_serial_service(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=1)
        trace = make_trace([(Op.READ, 0, 4)], spacing_us=100_000)
        result = device.run(trace)
        assert result.response.mean == pytest.approx(4 * 25.0)

    def test_channels_overlap_operations(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=4)
        trace = make_trace([(Op.READ, 0, 4)], spacing_us=100_000)
        result = device.run(trace)
        # four reads across four channels complete in one read time
        assert result.response.mean == pytest.approx(25.0)

    def test_more_channels_never_slower(self, tiny_config):
        import random
        rng = random.Random(2)
        ops = [(Op.WRITE if rng.random() < 0.7 else Op.READ,
                rng.randrange(512 - 4), rng.randint(1, 4))
               for _ in range(400)]
        means = []
        for channels in (1, 2, 8):
            ftl = OptimalFTL(tiny_config)
            device = ChannelSSDevice(ftl, channels=channels)
            result = device.run(make_trace(ops))
            means.append(result.response.mean)
        assert means[0] >= means[1] >= means[2]

    def test_warmup_supported(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=2)
        ops = [(Op.WRITE, i % 32, 1) for i in range(50)]
        result = device.run(make_trace(ops), warmup_requests=30)
        assert result.requests == 20
        assert result.metrics.user_page_writes == 20

    def test_channel_count_validated(self, tiny_config):
        with pytest.raises(ConfigError):
            ChannelSSDevice(OptimalFTL(tiny_config), channels=0)
