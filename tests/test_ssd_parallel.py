"""The multi-channel device model and the unified queueing subsystem.

The hand-computed scenarios use the Table 3 latencies scaled to the
tiny fixture geometry: 25us reads, 200us writes, 1.5ms erases.
"""

import pytest

from repro.errors import ConfigError, WorkloadError
from repro.ftl import DFTL, OptimalFTL, make_ftl
from repro.ssd import (ChannelSSDevice, DeviceModel, SSDevice,
                       make_device)
from repro.types import Op, Request, Trace
from repro.workloads import make_preset

from conftest import make_trace, random_ops


def burst(ops, arrival=0.0, logical_pages=512):
    """All requests arrive at the same instant (maximum contention)."""
    return Trace(requests=[Request(arrival=arrival, op=op, lpn=lpn,
                                   npages=npages)
                           for op, lpn, npages in ops],
                 logical_pages=logical_pages)


class TestChannelDevice:
    def test_single_channel_matches_serial_service(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=1)
        trace = make_trace([(Op.READ, 0, 4)], spacing_us=100_000)
        result = device.run(trace)
        assert result.response.mean == pytest.approx(4 * 25.0)

    def test_channels_overlap_operations(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=4)
        trace = make_trace([(Op.READ, 0, 4)], spacing_us=100_000)
        result = device.run(trace)
        # four reads across four channels complete in one read time
        assert result.response.mean == pytest.approx(25.0)

    def test_more_channels_never_slower(self, tiny_config):
        import random
        rng = random.Random(2)
        ops = [(Op.WRITE if rng.random() < 0.7 else Op.READ,
                rng.randrange(512 - 4), rng.randint(1, 4))
               for _ in range(400)]
        means = []
        for channels in (1, 2, 8):
            ftl = OptimalFTL(tiny_config)
            device = ChannelSSDevice(ftl, channels=channels)
            result = device.run(make_trace(ops))
            means.append(result.response.mean)
        assert means[0] >= means[1] >= means[2]

    def test_warmup_supported(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=2)
        ops = [(Op.WRITE, i % 32, 1) for i in range(50)]
        result = device.run(make_trace(ops), warmup_requests=30)
        assert result.requests == 20
        assert result.metrics.user_page_writes == 20

    def test_channel_count_validated(self, tiny_config):
        with pytest.raises(ConfigError):
            ChannelSSDevice(OptimalFTL(tiny_config), channels=0)

    def test_channel_count_reported(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        result = ChannelSSDevice(ftl, channels=4).run(
            make_trace([(Op.READ, 0, 1)]))
        assert result.channels == 4
        assert result.summary()["channels"] == 4


class TestMakeDevice:
    def test_one_channel_is_the_paper_model(self, tiny_config):
        device = make_device(OptimalFTL(tiny_config), channels=1)
        assert isinstance(device, SSDevice)

    def test_many_channels_build_the_channel_model(self, tiny_config):
        device = make_device(OptimalFTL(tiny_config), channels=4)
        assert isinstance(device, ChannelSSDevice)
        assert device.channels == 4

    def test_invalid_count_rejected(self, tiny_config):
        with pytest.raises(ConfigError):
            make_device(OptimalFTL(tiny_config), channels=0)

    def test_both_models_share_the_base(self, tiny_config):
        assert isinstance(make_device(OptimalFTL(tiny_config)),
                          DeviceModel)
        assert isinstance(make_device(OptimalFTL(tiny_config),
                                      channels=2), DeviceModel)


class TestQueueDelayAttribution:
    """Hand-computed micro-traces: start = first dispatch, not arrival."""

    def test_contended_request_records_queue_delay(self, tiny_config):
        # channels=2: R0 (2 reads) fills both channels until t=25;
        # R1 (2 reads, same arrival) starts at 25, finishes at 50.
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=2,
                                 keep_response_samples=True)
        result = device.run(burst([(Op.READ, 0, 2), (Op.READ, 4, 2)]))
        assert result.response.samples == [25.0, 50.0]
        assert result.response.total_queue_delay == pytest.approx(25.0)
        assert result.response.mean_queue_delay == pytest.approx(12.5)
        assert result.makespan == pytest.approx(50.0)

    def test_uncontended_requests_have_zero_delay(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=2)
        result = device.run(make_trace([(Op.READ, 0, 2),
                                        (Op.READ, 4, 2)],
                                       spacing_us=10_000))
        assert result.response.mean_queue_delay == 0.0

    def test_striping_cursor_persists_across_requests(self, tiny_config):
        # 3 reads on 2 channels: ch0 until 50, ch1 until 25.  The next
        # 1-read request continues on ch1 (cursor), starting at 25.
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=2,
                                 keep_response_samples=True)
        result = device.run(burst([(Op.READ, 0, 3), (Op.READ, 4, 1)]))
        assert result.response.samples == [50.0, 50.0]
        assert result.response.total_queue_delay == pytest.approx(25.0)

    def test_bursty_trace_on_four_channels_queues(self, tiny_config):
        # acceptance: channels=4 under a burst reports strictly
        # positive mean queueing delay
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=4)
        result = device.run(burst([(Op.READ, i * 4, 1)
                                   for i in range(8)]))
        assert result.response.mean_queue_delay > 0.0
        assert result.response.mean_queue_delay == pytest.approx(12.5)

    def test_queue_plus_service_equals_response(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=2)
        result = device.run(burst([(Op.READ, 0, 2), (Op.READ, 4, 2),
                                   (Op.WRITE, 8, 3)]))
        response = result.response
        assert (response.mean_queue_delay + response.mean_service_time
                == pytest.approx(response.mean))


class TestZeroOpRequests:
    """A request that touches no flash completes at its arrival."""

    def trim_after_reads(self, device):
        # the 4-page read occupies the device; the cached TRIM issues
        # no flash operation and must not queue behind it
        trace = Trace(requests=[
            Request(arrival=0.0, op=Op.READ, lpn=0, npages=4),
            Request(arrival=0.0, op=Op.TRIM, lpn=8, npages=1),
        ], logical_pages=512)
        return device.run(trace)

    def test_channel_model_trim_finishes_at_arrival(self, tiny_config):
        device = ChannelSSDevice(OptimalFTL(tiny_config), channels=2,
                                 keep_response_samples=True)
        result = self.trim_after_reads(device)
        assert result.response.samples == [50.0, 0.0]
        assert result.response.total_queue_delay == 0.0

    def test_single_server_trim_finishes_at_arrival(self, tiny_config):
        device = SSDevice(OptimalFTL(tiny_config),
                          keep_response_samples=True)
        result = self.trim_after_reads(device)
        assert result.response.samples == [100.0, 0.0]
        assert result.response.total_queue_delay == 0.0

    def test_zero_op_does_not_extend_makespan(self, tiny_config):
        device = ChannelSSDevice(OptimalFTL(tiny_config), channels=2)
        trace = Trace(requests=[
            Request(arrival=0.0, op=Op.READ, lpn=0, npages=2),
            Request(arrival=9_999.0, op=Op.TRIM, lpn=8, npages=1),
        ], logical_pages=512)
        result = device.run(trace)
        assert result.makespan == pytest.approx(9_999.0)


class TestGCAccounting:
    def test_gc_time_accrues_on_channel_device(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=4)
        result = device.run(make_trace(random_ops(700, 512, seed=5,
                                                  write_ratio=0.9)))
        assert result.gc_time_us > 0.0
        assert 0.0 < result.gc_time_fraction < 1.0
        assert result.service_time_us > result.gc_time_us

    def test_gc_accounting_is_model_independent(self, tiny_config):
        # flash-busy time is the same no matter how it is queued
        ops = random_ops(500, 512, seed=7, write_ratio=0.9)
        single = SSDevice(OptimalFTL(tiny_config)).run(make_trace(ops))
        multi = ChannelSSDevice(OptimalFTL(tiny_config),
                                channels=4).run(make_trace(ops))
        assert multi.gc_time_us == single.gc_time_us
        assert multi.service_time_us == single.service_time_us


class TestQueueStateReset:
    """Queues reset per run(); a reused device inherits no makespan."""

    def test_channel_queues_reset_between_runs(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=2,
                                 keep_response_samples=True)
        trace = make_trace([(Op.READ, i * 4, 2) for i in range(40)])
        first = device.run(trace)
        second = device.run(trace)
        # reads leave the FTL untouched: identical timings both runs
        assert second.response.samples == first.response.samples
        assert second.makespan == first.makespan

    def test_single_server_resets_between_runs(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        device = SSDevice(ftl, keep_response_samples=True)
        trace = make_trace([(Op.READ, i * 4, 2) for i in range(40)])
        first = device.run(trace)
        second = device.run(trace)
        assert second.response.samples == first.response.samples
        assert second.makespan == first.makespan


class TestValidation:
    def test_channel_model_rejects_oversized_trace(self, tiny_config):
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=4)
        trace = make_trace([(Op.READ, 511, 2)])  # touches LPN 512
        with pytest.raises(WorkloadError):
            device.run(trace)


class TestFeatureParity:
    """Sampler, response samples and background GC work on channels."""

    def test_sampler_attached(self, tiny_config):
        ftl = DFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=2, sample_interval=10)
        ops = [(Op.READ, i, 1) for i in range(30)]
        result = device.run(make_trace(ops))
        assert result.sampler is not None
        assert len(result.sampler.samples) == 3

    def test_background_gc_collects_in_idle_gaps(self, tiny_config):
        from test_background_gc import bursty_write_trace
        ftl = OptimalFTL(tiny_config)
        device = ChannelSSDevice(ftl, channels=4, background_gc=True)
        result = device.run(bursty_write_trace(bursts=80))
        assert result.background_collections > 0

    def test_background_gc_single_channel_parity(self, tiny_config):
        from test_background_gc import bursty_write_trace
        trace = bursty_write_trace(bursts=60)
        single = SSDevice(OptimalFTL(tiny_config),
                          background_gc=True).run(trace)
        chan = ChannelSSDevice(OptimalFTL(tiny_config), channels=1,
                               background_gc=True).run(trace)
        assert chan.response == single.response
        assert chan.makespan == single.makespan
        assert chan.background_collections == single.background_collections
        assert chan.gc_time_us == single.gc_time_us


class TestSingleChannelEquivalence:
    """channels=1 reproduces SSDevice bit-for-bit (the tentpole
    invariant that makes the channel model trustworthy)."""

    WORKLOADS = ("financial1", "financial2", "msr-ts", "msr-src")

    def devices(self, ftl_name, trace):
        from repro.experiments.common import simulation_config
        single = make_ftl(ftl_name, simulation_config(trace))
        chan = make_ftl(ftl_name, simulation_config(trace))
        return (SSDevice(single, keep_response_samples=True),
                ChannelSSDevice(chan, channels=1,
                                keep_response_samples=True))

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_tier1_workloads_identical(self, workload):
        trace = make_preset(workload, logical_pages=2048,
                            num_requests=700)
        single, chan = self.devices("dftl", trace)
        a = single.run(trace, warmup_requests=150)
        b = chan.run(trace, warmup_requests=150)
        assert a.response == b.response          # includes samples
        assert a.response.samples == b.response.samples
        assert a.metrics == b.metrics
        assert a.makespan == b.makespan
        assert a.gc_time_us == b.gc_time_us
        assert a.service_time_us == b.service_time_us
        assert a.summary() == b.summary()

    def test_tpftl_identical(self):
        trace = make_preset("financial1", logical_pages=2048,
                            num_requests=700)
        single, chan = self.devices("tpftl", trace)
        a = single.run(trace, warmup_requests=150)
        b = chan.run(trace, warmup_requests=150)
        assert a.response == b.response
        assert a.metrics == b.metrics
        assert a.makespan == b.makespan
