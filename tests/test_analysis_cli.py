"""The widened lint CLI: formats, baseline knobs, rule/path selection.

Covers the acceptance surface: ``--format json`` round-trips through
``json.loads``, ``--format sarif`` emits the required SARIF 2.1.0
skeleton (runs / tool / driver / rules / results), and suppression —
baseline or pragma — yields identical verdicts across all three
formats.
"""

import json
import pathlib

import pytest

from repro.analysis.__main__ import main
from repro.analysis.flow import DOMAIN_RULES, FLOW_RULES, PROTOCOL_RULES
from repro.analysis.flow.sarif import SARIF_VERSION
from repro.analysis.lint import RULES

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
FIXTURES = ROOT / "tests" / "fixtures"
AST_FIXTURE = FIXTURES / "tp_violations.py"
FLOW_FIXTURE = FIXTURES / "flow" / "flow_tp101.py"


def _lint(args, capsys):
    code = main(["lint", *args])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# ----------------------------------------------------------------------
# json format
# ----------------------------------------------------------------------
def test_json_round_trips(capsys):
    code, out, err = _lint(
        [str(AST_FIXTURE), "--no-baseline", "--format", "json"], capsys)
    assert code == 1
    document = json.loads(out)
    assert document["tool"] == "repro.analysis"
    assert document["summary"]["new"] == len(document["findings"])
    assert document["summary"]["grandfathered"] == 0
    for finding in document["findings"]:
        assert set(finding) == {"rule", "path", "line", "col",
                                "message", "snippet", "suppressed"}
        assert (finding["rule"] in RULES
                or finding["rule"] in FLOW_RULES
                or finding["rule"] in DOMAIN_RULES
                or finding["rule"] in PROTOCOL_RULES)
        assert finding["suppressed"] is False
    # status chatter goes to stderr, keeping stdout machine-parseable
    assert "finding(s)" in err


def test_json_includes_flow_findings(capsys):
    code, out, _ = _lint(
        [str(FLOW_FIXTURE), "--no-baseline", "--format", "json"], capsys)
    assert code == 1
    rules = {f["rule"] for f in json.loads(out)["findings"]}
    assert rules == {"TP101"}


def test_json_clean_tree(capsys):
    code, out, _ = _lint(
        [str(SRC), "--no-baseline", "--format", "json"], capsys)
    assert code == 0
    assert json.loads(out)["findings"] == []


# ----------------------------------------------------------------------
# sarif format
# ----------------------------------------------------------------------
def _sarif(args, capsys):
    code, out, _ = _lint([*args, "--format", "sarif"], capsys)
    return code, json.loads(out)


def test_sarif_required_fields(capsys):
    code, document = _sarif([str(AST_FIXTURE), "--no-baseline"], capsys)
    assert code == 1
    assert document["version"] == SARIF_VERSION == "2.1.0"
    assert document["$schema"].startswith("https://")
    assert len(document["runs"]) == 1
    run = document["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.analysis"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(
        set(RULES) | set(FLOW_RULES) | set(DOMAIN_RULES)
        | set(PROTOCOL_RULES))
    assert set(PROTOCOL_RULES) <= set(rule_ids)
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in (
            "error", "warning", "note")
    assert run["results"], "fixture must produce results"
    for result in run["results"]:
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]
        assert result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"]
        assert location["region"]["startLine"] >= 1
        assert result["partialFingerprints"]["tpBaselineKey/v1"]


def test_sarif_baseline_entries_become_suppressions(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(AST_FIXTURE), "--write-baseline",
                 "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    code, document = _sarif(
        [str(AST_FIXTURE), "--baseline", str(baseline)], capsys)
    assert code == 0
    results = document["runs"][0]["results"]
    assert results
    for result in results:
        kinds = [s["kind"] for s in result["suppressions"]]
        assert kinds == ["external"]


def test_sarif_pragma_suppression_matches_text(tmp_path, capsys):
    source = (
        '"""Fixture."""\n'
        "class Dev:\n"
        "    def run(self, trace):\n"
        "        for lpn in {1, 2}:  # tp: allow=TP104 - commutative\n"
        "            self.emit(lpn)\n")
    target = tmp_path / "suppressed.py"
    target.write_text(source, encoding="utf-8")
    verdicts = {}
    for format_ in ("text", "json", "sarif"):
        code, out, _ = _lint(
            [str(target), "--no-baseline", "--format", format_], capsys)
        verdicts[format_] = code
        if format_ == "json":
            assert json.loads(out)["findings"] == []
        if format_ == "sarif":
            assert json.loads(out)["runs"][0]["results"] == []
    assert verdicts == {"text": 0, "json": 0, "sarif": 0}


# ----------------------------------------------------------------------
# --fail-stale / --disable / --exclude / --output
# ----------------------------------------------------------------------
def test_fail_stale_flag(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"findings": [
        {"rule": "TP001", "path": "gone.py", "snippet": "time.time()"}
    ]}), encoding="utf-8")
    args = [str(SRC / "repro" / "analysis" / "flow"),
            "--baseline", str(baseline)]
    assert main(["lint", *args]) == 0
    capsys.readouterr()
    code, _, err = _lint([*args, "--fail-stale", "--format", "json"],
                         capsys)
    assert code == 1
    assert "no longer triggered" in err


def test_stale_entries_reported_in_json_summary(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"findings": [
        {"rule": "TP001", "path": "gone.py", "snippet": "time.time()"}
    ]}), encoding="utf-8")
    code, out, _ = _lint(
        [str(SRC / "repro" / "analysis" / "flow"), "--format", "json",
         "--baseline", str(baseline)], capsys)
    assert code == 0
    stale = json.loads(out)["summary"]["stale_baseline_entries"]
    assert stale == [{"rule": "TP001", "path": "gone.py",
                      "snippet": "time.time()"}]


def test_disable_filters_rules(capsys):
    code, out, _ = _lint(
        [str(FLOW_FIXTURE), "--no-baseline", "--format", "json",
         "--disable", "TP101"], capsys)
    assert code == 0
    assert json.loads(out)["findings"] == []


def test_disable_accepts_comma_separated_codes(capsys):
    code, out, _ = _lint(
        [str(AST_FIXTURE), str(FLOW_FIXTURE), "--no-baseline",
         "--format", "json", "--disable",
         ",".join(sorted(set(RULES) | set(FLOW_RULES)))], capsys)
    assert code == 0
    assert json.loads(out)["findings"] == []


def test_exclude_prunes_subtrees(capsys):
    """The CI test-tree invocation: fixtures excluded, and the rules
    tests legitimately break (assert, direct Block ops) disabled."""
    code, _, _ = _lint(
        [str(ROOT / "tests"), str(ROOT / "benchmarks"), "--no-baseline",
         "--exclude", str(FIXTURES),
         "--disable", "TP003,TP006,TP102"], capsys)
    assert code == 0


def test_output_writes_document_to_file(tmp_path, capsys):
    target = tmp_path / "report.sarif"
    code, out, _ = _lint(
        [str(AST_FIXTURE), "--no-baseline", "--format", "sarif",
         "--output", str(target)], capsys)
    assert code == 1
    assert out == ""
    document = json.loads(target.read_text(encoding="utf-8"))
    assert document["version"] == SARIF_VERSION


def test_unknown_format_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["lint", str(SRC), "--format", "xml"])


# ----------------------------------------------------------------------
# default tree pruning and path normalization
# ----------------------------------------------------------------------
_WALL_CLOCK = "import time\n\n\ndef now():\n    return time.time()\n"


def test_pycache_and_hidden_dirs_pruned_by_default(tmp_path, capsys):
    """Walking a tree skips __pycache__/hidden/egg-info subtrees even
    without --exclude, so stale bytecode siblings and vendored venvs
    never pollute the report."""
    tree = tmp_path / "pkg"
    for trap in ("__pycache__", ".hidden", "dist.egg-info"):
        (tree / trap).mkdir(parents=True)
        (tree / trap / "trap.py").write_text(_WALL_CLOCK,
                                             encoding="utf-8")
    (tree / "ok.py").write_text('"""Clean."""\nX = 1\n',
                                encoding="utf-8")
    code, out, _ = _lint(
        [str(tree), "--no-baseline", "--format", "json"], capsys)
    assert code == 0
    assert json.loads(out)["findings"] == []


def test_explicit_file_argument_bypasses_default_pruning(
        tmp_path, capsys):
    """Naming a file directly lints it even inside a pruned dir."""
    trap = tmp_path / "__pycache__" / "trap.py"
    trap.parent.mkdir()
    trap.write_text(_WALL_CLOCK, encoding="utf-8")
    code, out, _ = _lint(
        [str(trap), "--no-baseline", "--format", "json"], capsys)
    assert code == 1
    assert json.loads(out)["findings"]


def test_finding_paths_normalize_to_repo_relative(
        monkeypatch, capsys):
    """Both passes key findings by repo-relative POSIX paths, even
    when the CLI is invoked with absolute arguments — so TP0xx and
    TP1xx baseline entries can never disagree on spelling."""
    monkeypatch.chdir(ROOT)
    code, out, _ = _lint(
        [str(AST_FIXTURE), str(FLOW_FIXTURE), "--no-baseline",
         "--format", "json"], capsys)
    assert code == 1
    findings = json.loads(out)["findings"]
    paths = {f["path"] for f in findings}
    assert paths == {"tests/fixtures/tp_violations.py",
                     "tests/fixtures/flow/flow_tp101.py"}
    assert {f["rule"] for f in findings
            if f["path"].endswith("flow_tp101.py")} == {"TP101"}


# ----------------------------------------------------------------------
# rules listing
# ----------------------------------------------------------------------
def test_rules_listing_grouped_and_sorted(capsys):
    """Snapshot of the rules subcommand structure: five family blocks
    in TP0xx/TP1xx/TP2xx/TP3xx/SANxxx order, each sorted by code."""
    from repro.analysis.checkers import SAN_RULES
    assert main(["rules"]) == 0
    out = capsys.readouterr().out
    blocks = out.strip().split("\n\n")
    assert len(blocks) == 5
    expected = [sorted(RULES), sorted(FLOW_RULES),
                sorted(DOMAIN_RULES), sorted(PROTOCOL_RULES),
                sorted(SAN_RULES)]
    for block, codes in zip(blocks, expected):
        header, *entries = block.splitlines()
        assert header.endswith(":")
        assert [line.split()[0] for line in entries] == codes
    assert blocks[2].startswith("TP2xx")
    assert blocks[3].startswith("TP3xx")


# ----------------------------------------------------------------------
# --stats: one shared parse, per-pass wall-clock
# ----------------------------------------------------------------------
def test_stats_line_reports_every_pass_once(capsys):
    """--stats prints one stderr line with the parse plus all four
    analysis passes; stdout stays machine-parseable."""
    code, out, err = _lint(
        [str(FLOW_FIXTURE), "--no-baseline", "--format", "json",
         "--stats"], capsys)
    assert code == 1
    assert json.loads(out)["findings"]
    stats_lines = [line for line in err.splitlines()
                   if line.startswith("stats:")]
    assert len(stats_lines) == 1
    for label in ("parse", "lint", "flow", "domains", "protocols"):
        assert f" {label} " in f" {stats_lines[0]} ".replace(
            "stats: ", " "), (label, stats_lines[0])
    assert "one shared parse" in stats_lines[0]
