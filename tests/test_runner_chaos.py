"""Chaos harness for the supervised runner.

Injects worker crashes, hangs, deterministic and transient exceptions,
SIGINT and corrupt cache files into real (tiny) matrices via the
env-gated ``REPRO_CHAOS`` hook, and asserts the supervision contract:
transient faults are retried with seeded backoff, stuck workers are
killed by the watchdog and requeued, persistent failures become
structured :class:`~repro.errors.CellFailure` records instead of
escaped tracebacks, completed cells are committed to the run cache the
moment they finish, and an interrupted matrix resumes to full
completion with every previously completed cell served from cache.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import (CellFailure, ExperimentError,
                          MatrixFailureError, RunnerError)
from repro.experiments import ExperimentScale
from repro.experiments.common import clear_matrix_cache
from repro.experiments.runner import (ParallelRunner, RunCache, RunSpec,
                                      configure_runner, reset_runner)
from repro.experiments.supervisor import (CHAOS_ENV, JOURNAL_NAME,
                                          Journal, RetryPolicy,
                                          Supervisor, Task)

SRC = str(Path(__file__).resolve().parent.parent / "src")

TINY = ExperimentScale(
    name="tiny", num_requests=600, warmup_requests=100,
    financial_pages=2048, msr_pages=4096,
    cache_fractions=(1 / 32, 1.0), sample_interval=300)

#: fast backoff so the whole chaos suite stays in seconds
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01,
                         backoff_factor=2.0, backoff_max_s=0.05)


@pytest.fixture(autouse=True)
def _fresh_default_runner(tmp_path):
    """Isolate the default runner; never leak chaos into other tests."""
    configure_runner(jobs=1, cache_dir=tmp_path / "default-cache")
    yield
    reset_runner()
    clear_matrix_cache()


def tiny_spec(**overrides) -> RunSpec:
    params = dict(workload="financial1", ftl="dftl", scale=TINY,
                  sample_interval=300)
    params.update(overrides)
    return RunSpec(**params)


def arm_chaos(tmp_path, monkeypatch, rules) -> Path:
    """Write a chaos plan and point ``REPRO_CHAOS`` at it."""
    plan = tmp_path / "chaos-plan.json"
    plan.write_text(json.dumps(rules), encoding="utf-8")
    monkeypatch.setenv(CHAOS_ENV, str(plan))
    return plan


class TestRetryPolicy:
    def test_jitter_is_seeded_and_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay_s("cell", 1) == policy.delay_s("cell", 1)
        assert policy.delay_s("cell", 1) != policy.delay_s("cell", 2)
        assert policy.delay_s("cell", 1) != policy.delay_s("other", 1)
        assert (RetryPolicy(seed=8).delay_s("cell", 1)
                != policy.delay_s("cell", 1))

    def test_backoff_grows_and_is_bounded(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             backoff_max_s=0.4, jitter=0.0)
        delays = [policy.delay_s("k", attempt)
                  for attempt in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]
        jittered = RetryPolicy(backoff_base_s=0.1, backoff_max_s=0.4,
                               jitter=0.5)
        assert all(jittered.delay_s("k", a) <= 0.4 * 1.5
                   for a in range(1, 8))

    def test_invalid_policies_rejected(self):
        with pytest.raises(ExperimentError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ExperimentError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ExperimentError):
            RetryPolicy(jitter=-0.1)


class TestJournal:
    def test_load_missing_file_is_empty(self, tmp_path):
        state = Journal.load(tmp_path / "nope.jsonl")
        assert state.events == 0 and not state.interrupted

    def test_rotation_vs_resume(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        Journal(path).record("done", key="a", label="a", attempts=1,
                             elapsed_s=0.1)
        # fresh session rotates; the old event is gone
        fresh = Journal(path)
        assert Journal.load(path).events == 0
        fresh.record("done", key="b", label="b", attempts=1,
                     elapsed_s=0.1)
        # resume appends and replays the prior state
        resumed = Journal(path, resume=True)
        assert "b" in resumed.prior.completed
        state = Journal.load(path)
        assert state.events >= 2  # done + resume marker

    def test_corrupt_lines_skipped_not_fatal(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        journal = Journal(path)
        journal.record("done", key="a", label="a", attempts=1,
                       elapsed_s=0.1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "done", "key": "torn')  # torn write
        state = Journal.load(path)
        assert state.corrupt_lines == 1
        assert "a" in state.completed

    def test_failed_then_done_counts_as_completed(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        journal = Journal(path)
        journal.record("failed", key="a",
                       failure={"key": "a", "label": "a"})
        journal.record("done", key="a", label="a", attempts=2,
                       elapsed_s=0.1)
        state = Journal.load(path)
        assert "a" in state.completed and "a" not in state.failed


class TestWorkerCrash:
    def test_crashed_worker_is_retried_to_success(self, tmp_path,
                                                  monkeypatch):
        clean = ParallelRunner(jobs=2, cache=None).run_specs(
            [tiny_spec(), tiny_spec(ftl="tpftl")])
        arm_chaos(tmp_path, monkeypatch, [
            {"match": "financial1:dftl", "mode": "crash",
             "attempts": [1]}])
        journal = Journal(tmp_path / JOURNAL_NAME)
        runner = ParallelRunner(jobs=2, cache=RunCache(tmp_path / "rc"),
                                retry=FAST_RETRY, journal=journal)
        results = runner.run_specs([tiny_spec(), tiny_spec(ftl="tpftl")])
        assert results == clean  # determinism survives the retry
        report = runner.bench_report()
        assert report["totals"]["retries"] == 1
        assert report["totals"]["failed"] == 0
        crashed = next(o for o in runner.outcomes
                       if o.label == "financial1:dftl")
        assert crashed.attempts == 2 and not crashed.failed
        events = [json.loads(line) for line in
                  (tmp_path / JOURNAL_NAME).read_text().splitlines()]
        retry = next(e for e in events if e["event"] == "retry")
        assert retry["error_type"] == "WorkerCrashError"


class TestWatchdog:
    def test_hung_cell_is_killed_and_requeued(self, tmp_path,
                                              monkeypatch):
        arm_chaos(tmp_path, monkeypatch, [
            {"match": "financial1:dftl", "mode": "hang", "seconds": 60,
             "attempts": [1]}])
        journal = Journal(tmp_path / JOURNAL_NAME)
        runner = ParallelRunner(jobs=2, cache=None, retry=FAST_RETRY,
                                timeout_s=2.0, journal=journal)
        started = time.monotonic()  # tp: allow=TP002 - harness timing
        results = runner.run_specs([tiny_spec()])
        elapsed = time.monotonic() - started  # tp: allow=TP002 - harness timing
        assert results[0] is not None
        assert elapsed < 30  # killed at ~2s, nowhere near the 60s hang
        assert runner.outcomes[-1].attempts == 2
        events = [json.loads(line) for line in
                  (tmp_path / JOURNAL_NAME).read_text().splitlines()]
        retry = next(e for e in events if e["event"] == "retry")
        assert retry["error_type"] == "CellTimeoutError"

    def test_watchdog_requires_positive_timeout(self):
        with pytest.raises(ExperimentError):
            Supervisor(jobs=1, timeout_s=0.0)


class TestQuarantine:
    def test_deterministic_failure_not_retried(self, tmp_path,
                                               monkeypatch):
        arm_chaos(tmp_path, monkeypatch, [
            {"match": "financial1:dftl", "mode": "raise"}])
        cache = RunCache(tmp_path / "rc")
        runner = ParallelRunner(jobs=2, cache=cache, retry=FAST_RETRY)
        with pytest.raises(MatrixFailureError) as excinfo:
            runner.run_specs([tiny_spec(), tiny_spec(ftl="tpftl")])
        failure = excinfo.value.failures[0]
        assert failure.error_type == "RuntimeError"
        assert failure.attempts == 1  # deterministic: no retry budget
        assert not failure.transient
        assert "chaos" in failure.message
        assert failure.traceback  # full traceback captured, not escaped
        # the healthy cell completed and was committed before the raise
        assert cache.stats()["stores"] == 1
        assert isinstance(excinfo.value, RunnerError)
        assert isinstance(excinfo.value, ExperimentError)

    def test_transient_failure_exhausts_attempt_budget(self, tmp_path,
                                                       monkeypatch):
        arm_chaos(tmp_path, monkeypatch, [
            {"match": "financial1:dftl", "mode": "oserror"}])
        runner = ParallelRunner(jobs=2, cache=None, retry=FAST_RETRY)
        with pytest.raises(MatrixFailureError) as excinfo:
            runner.run_specs([tiny_spec()])
        failure = excinfo.value.failures[0]
        assert failure.error_type == "OSError"
        assert failure.attempts == FAST_RETRY.max_attempts
        assert failure.transient

    def test_allow_failures_returns_none_slots(self, tmp_path,
                                               monkeypatch):
        arm_chaos(tmp_path, monkeypatch, [
            {"match": "financial1:dftl", "mode": "raise"}])
        runner = ParallelRunner(jobs=2, cache=None, retry=FAST_RETRY)
        results = runner.run_specs(
            [tiny_spec(), tiny_spec(ftl="tpftl")], allow_failures=True)
        assert results[0] is None
        assert results[1] is not None
        assert len(runner.failures) == 1
        report = runner.bench_report()
        assert report["totals"]["failed"] == 1
        assert report["failures"][0]["label"] == "financial1:dftl"
        failed_cell = next(c for c in report["cells"] if c["failed"])
        assert failed_cell["label"] == "financial1:dftl"

    def test_failure_manifest_round_trips(self, tmp_path, monkeypatch):
        arm_chaos(tmp_path, monkeypatch, [
            {"match": "financial1:dftl", "mode": "raise"}])
        runner = ParallelRunner(jobs=2, cache=None, retry=FAST_RETRY)
        runner.run_specs([tiny_spec()], allow_failures=True)
        target = runner.write_failure_manifest(tmp_path / "manifest.json")
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["manifest"] == "runner-failures"
        assert payload["failed"] == 1
        restored = CellFailure.from_payload(payload["failures"][0])
        assert restored == runner.failures[0]
        assert "RuntimeError" in restored.summary()

    def test_fail_fast_abandons_remaining_cells(self, tmp_path,
                                                monkeypatch):
        arm_chaos(tmp_path, monkeypatch, [
            {"match": "financial1:dftl", "mode": "raise"}])
        cache = RunCache(tmp_path / "rc")
        runner = ParallelRunner(jobs=1, cache=cache, retry=FAST_RETRY,
                                fail_fast=True)
        results = runner.run_specs(
            [tiny_spec(), tiny_spec(ftl="tpftl")], allow_failures=True)
        assert results == [None, None]  # second cell abandoned
        assert len(runner.failures) == 1
        assert cache.stats()["stores"] == 0

    def test_fail_fast_with_parallel_workers_still_running(
            self, tmp_path, monkeypatch):
        # the quarantined cell settles while a sibling worker is still
        # alive: fail-fast must terminate it mid-_poll without the
        # stale running-table snapshot blowing up (KeyError regression)
        arm_chaos(tmp_path, monkeypatch, [
            {"match": "financial1:dftl", "mode": "raise"},
            {"match": "financial1:tpftl", "mode": "hang",
             "seconds": 120}])
        runner = ParallelRunner(jobs=2, cache=None, retry=FAST_RETRY,
                                fail_fast=True)
        started = time.monotonic()  # tp: allow=TP002 - harness timing
        results = runner.run_specs(
            [tiny_spec(), tiny_spec(ftl="tpftl")], allow_failures=True)
        elapsed = time.monotonic() - started  # tp: allow=TP002 - harness timing
        assert results == [None, None]
        assert len(runner.failures) == 1
        assert runner.failures[0].label == "financial1:dftl"
        assert elapsed < 60  # hung sibling was killed, not waited out

    def test_fail_fast_parallel_raises_structured_error(
            self, tmp_path, monkeypatch):
        # without allow_failures the same scenario must surface as a
        # MatrixFailureError (caught by the CLI), never a raw KeyError
        arm_chaos(tmp_path, monkeypatch, [
            {"match": "financial1:dftl", "mode": "raise"},
            {"match": "financial1:tpftl", "mode": "hang",
             "seconds": 120}])
        runner = ParallelRunner(jobs=2, cache=None, retry=FAST_RETRY,
                                fail_fast=True)
        with pytest.raises(MatrixFailureError) as excinfo:
            runner.run_specs([tiny_spec(), tiny_spec(ftl="tpftl")])
        assert excinfo.value.failures[0].label == "financial1:dftl"


class TestMapSupervision:
    def test_map_retries_transient_failures(self, tmp_path,
                                            monkeypatch):
        arm_chaos(tmp_path, monkeypatch, [
            {"match": "abs[0]", "mode": "oserror", "attempts": [1]}])
        runner = ParallelRunner(jobs=2, retry=FAST_RETRY)
        assert runner.map(abs, [(3,), (-4,), (5,)]) == [3, 4, 5]

    def test_map_quarantines_persistent_failures(self, tmp_path,
                                                 monkeypatch):
        arm_chaos(tmp_path, monkeypatch, [
            {"match": "abs[1]", "mode": "raise"}])
        runner = ParallelRunner(jobs=2, retry=FAST_RETRY)
        with pytest.raises(MatrixFailureError) as excinfo:
            runner.map(abs, [(3,), (-4,), (5,)])
        assert excinfo.value.failures[0].label == "abs[1]"

    def test_map_serial_no_watchdog_propagates_raw(self, tmp_path,
                                                   monkeypatch):
        # jobs=1 without a watchdog is the historical plain loop
        arm_chaos(tmp_path, monkeypatch, [
            {"match": "anything", "mode": "raise"}])
        runner = ParallelRunner(jobs=1)
        with pytest.raises(TypeError):
            runner.map(abs, [("not a number",)])


class _BrokenContext:
    """A multiprocessing context whose process spawns always fail."""

    def Pipe(self, duplex=True):
        return multiprocessing.get_context().Pipe(duplex)

    def Process(self, *args, **kwargs):
        raise OSError("chaos: process spawn refused")


def _double(value):
    """Module-level helper task (picklable) for supervisor tests."""
    return value * 2


class TestDegradeToSerial:
    def test_repeated_spawn_failure_degrades_not_dies(self, tmp_path):
        journal = Journal(tmp_path / JOURNAL_NAME)
        supervisor = Supervisor(jobs=2, timeout_s=5.0, retry=FAST_RETRY,
                                journal=journal,
                                mp_context=_BrokenContext())
        tasks = [Task(key=f"t{i}", label=f"t{i}", fn=_double,
                      args=(i,)) for i in range(4)]
        report = supervisor.run(tasks)
        assert report.results == {f"t{i}": i * 2 for i in range(4)}
        assert report.degraded and supervisor.degraded
        assert not report.failures
        events = [json.loads(line) for line in
                  (tmp_path / JOURNAL_NAME).read_text().splitlines()]
        degraded = next(e for e in events if e["event"] == "degraded")
        assert "spawn refused" in degraded["reason"]

    def test_degraded_runner_still_serves_matrix(self, tmp_path):
        runner = ParallelRunner(jobs=2, cache=RunCache(tmp_path / "rc"),
                                retry=FAST_RETRY)
        runner._degraded = True  # as if a previous batch degraded
        results = runner.run_specs([tiny_spec()])
        assert results[0] is not None
        assert runner.bench_report()["supervision"]["degraded_to_serial"]

    def test_duplicate_task_keys_rejected(self):
        supervisor = Supervisor(jobs=1)
        tasks = [Task(key="same", label="a", fn=_double, args=(1,)),
                 Task(key="same", label="b", fn=_double, args=(2,))]
        with pytest.raises(ExperimentError):
            supervisor.run(tasks)


class TestCorruptCacheChaos:
    def test_matrix_recovers_from_corrupt_cache_file(self, tmp_path):
        cache_dir = tmp_path / "rc"
        specs = [tiny_spec(), tiny_spec(ftl="tpftl")]
        cold = ParallelRunner(jobs=1, cache=RunCache(cache_dir))
        expected = cold.run_specs(specs)
        # torch one entry on disk: torn write / bit rot
        victim = cache_dir / f"{specs[0].digest}.json"
        victim.write_text("{ not json at all", encoding="utf-8")
        warm = ParallelRunner(jobs=1, cache=RunCache(cache_dir))
        results = warm.run_specs(specs)
        assert results == expected  # recomputed, not propagated
        stats = warm.cache.stats()
        assert stats["corrupt"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        # the evidence is quarantined, not clobbered
        quarantined = cache_dir / "corrupt" / victim.name
        assert quarantined.exists()
        assert quarantined.read_text(encoding="utf-8").startswith("{ not")
        # and the recomputed entry is valid again
        assert RunCache(cache_dir).get(specs[0]) is not None


class TestSigintResume:
    def _driver_source(self, cache_dir: Path) -> str:
        return f"""
import sys
sys.path.insert(0, {SRC!r})
from repro.experiments import ExperimentScale
from repro.experiments.runner import ParallelRunner, RunCache, RunSpec
from repro.experiments.supervisor import Journal

scale = ExperimentScale(
    name="tiny", num_requests=600, warmup_requests=100,
    financial_pages=2048, msr_pages=4096,
    cache_fractions=(1 / 32, 1.0), sample_interval=300)
specs = [RunSpec(workload="financial1", ftl="dftl", scale=scale,
                 sample_interval=300),
         RunSpec(workload="msr-ts", ftl="dftl", scale=scale,
                 sample_interval=300)]
journal = Journal({str(cache_dir / JOURNAL_NAME)!r})
runner = ParallelRunner(jobs=2, cache=RunCache({str(cache_dir)!r}),
                        journal=journal)
try:
    runner.run_specs(specs)
except KeyboardInterrupt:
    sys.exit(130)
sys.exit(0)
"""

    def test_sigint_drains_completed_cells_then_resume_finishes(
            self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "rc"
        cache_dir.mkdir()
        plan = arm_chaos(tmp_path, monkeypatch, [
            {"match": "msr-ts", "mode": "hang", "seconds": 300}])
        env = dict(os.environ)
        env[CHAOS_ENV] = str(plan)
        process = subprocess.Popen(
            [sys.executable, "-c", self._driver_source(cache_dir)],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            # wait for the fast cell to land in the cache...
            deadline = time.monotonic() + 60  # tp: allow=TP002 - harness timing
            while time.monotonic() < deadline:  # tp: allow=TP002 - harness timing
                if list(cache_dir.glob("*.json")):
                    break
                if process.poll() is not None:
                    break
                time.sleep(0.1)
            assert list(cache_dir.glob("*.json")), (
                process.communicate(timeout=5))
            # ... then interrupt while the chaos cell hangs
            process.send_signal(signal.SIGINT)
            returncode = process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        assert returncode == 130
        state = Journal.load(cache_dir / JOURNAL_NAME)
        assert state.interrupted
        assert len(state.completed) == 1
        # resume without chaos: full completion, the completed cell is
        # served from cache and only the abandoned cell simulates
        monkeypatch.delenv(CHAOS_ENV)
        journal = Journal(cache_dir / JOURNAL_NAME, resume=True)
        assert journal.prior.interrupted
        assert len(journal.prior.completed) == 1
        runner = ParallelRunner(jobs=1, cache=RunCache(cache_dir),
                                journal=journal)
        specs = [tiny_spec(), tiny_spec(workload="msr-ts")]
        results = runner.run_specs(specs)
        assert all(result is not None for result in results)
        stats = runner.cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        resumed = Journal.load(cache_dir / JOURNAL_NAME)
        assert not resumed.interrupted
        assert len(resumed.completed) == 2


class TestAcceptanceScenario:
    """The ISSUE's acceptance matrix: crash + hang + corrupt cache."""

    def test_chaos_matrix_completes_then_resumes_clean(self, tmp_path,
                                                       monkeypatch):
        cache_dir = tmp_path / "rc"
        specs = [tiny_spec(),                       # crashes once
                 tiny_spec(ftl="tpftl"),            # hangs once
                 tiny_spec(ftl="sftl"),             # corrupt cache entry
                 tiny_spec(ftl="optimal")]          # persistent failure
        # pre-populate the sftl cell, then corrupt it on disk
        seed_cache = RunCache(cache_dir)
        ParallelRunner(jobs=1, cache=seed_cache).run_specs([specs[2]])
        (cache_dir / f"{specs[2].digest}.json").write_text(
            "\x00garbage", encoding="utf-8")
        arm_chaos(tmp_path, monkeypatch, [
            {"match": "financial1:dftl", "mode": "crash",
             "attempts": [1]},
            {"match": "financial1:tpftl", "mode": "hang",
             "seconds": 120, "attempts": [1]},
            {"match": "financial1:optimal", "mode": "raise"}])
        journal = Journal(cache_dir / JOURNAL_NAME)
        runner = ParallelRunner(jobs=2, cache=RunCache(cache_dir),
                                retry=FAST_RETRY, timeout_s=3.0,
                                journal=journal)
        results = runner.run_specs(specs, allow_failures=True)
        # crash, hang and corruption all recovered; only the
        # deterministic failure is quarantined — as a record, not a
        # traceback
        assert [result is not None for result in results] == \
            [True, True, True, False]
        assert runner.cache.stats()["corrupt"] == 1
        manifest = runner.failure_manifest()
        assert manifest["failed"] == 1
        assert manifest["failures"][0]["label"] == "financial1:optimal"
        assert manifest["failures"][0]["traceback"]
        report = runner.bench_report()
        assert report["totals"]["retries"] >= 2  # crash + hang retries
        # resume with chaos disarmed: every previously completed cell
        # is served from cache; only the quarantined cell simulates
        monkeypatch.delenv(CHAOS_ENV)
        resumed_journal = Journal(cache_dir / JOURNAL_NAME, resume=True)
        assert len(resumed_journal.prior.failed) == 1
        resumed = ParallelRunner(jobs=2, cache=RunCache(cache_dir),
                                 retry=FAST_RETRY, timeout_s=3.0,
                                 journal=resumed_journal)
        final = resumed.run_specs(specs)
        assert all(result is not None for result in final)
        stats = resumed.cache.stats()
        assert stats["hits"] == 3 and stats["misses"] == 1
        state = Journal.load(cache_dir / JOURNAL_NAME)
        assert len(state.failed) == 0
