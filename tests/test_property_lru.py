"""Property-based tests: LRUDict against a model implementation."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant, rule)

from repro.cache import LRUDict

keys = st.integers(min_value=0, max_value=20)
values = st.integers()


class LRUDictMachine(RuleBasedStateMachine):
    """Drive LRUDict and an OrderedDict model with the same ops."""

    def __init__(self):
        super().__init__()
        self.dut = LRUDict()
        self.model = OrderedDict()  # most-recent last

    @rule(key=keys, value=values)
    def put(self, key, value):
        self.dut.put(key, value)
        self.model.pop(key, None)
        self.model[key] = value

    @rule(key=keys)
    def get(self, key):
        expected = self.model.get(key)
        assert self.dut.get(key) == expected
        if key in self.model:
            self.model.move_to_end(key)

    @rule(key=keys)
    def peek(self, key):
        assert self.dut.get(key, touch=False) == self.model.get(key)

    @rule(key=keys)
    def remove(self, key):
        if key in self.model:
            assert self.dut.remove(key) == self.model.pop(key)
        else:
            with pytest.raises(KeyError):
                self.dut.remove(key)

    @rule()
    def pop_lru(self):
        if self.model:
            expected_key = next(iter(self.model))
            assert self.dut.pop_lru() == (expected_key,
                                          self.model.pop(expected_key))
        else:
            assert self.dut.pop_lru() is None

    @invariant()
    def same_size(self):
        assert len(self.dut) == len(self.model)

    @invariant()
    def same_order(self):
        assert (list(self.dut.keys_mru_to_lru())
                == list(reversed(self.model)))


TestLRUDictMachine = LRUDictMachine.TestCase
TestLRUDictMachine.settings = settings(max_examples=40,
                                       stateful_step_count=60,
                                       deadline=None)


@given(st.lists(st.tuples(keys, values), min_size=1, max_size=100))
@settings(max_examples=60, deadline=None)
def test_lru_eviction_order_matches_insertion_recency(ops):
    """Popping everything yields keys in recency order."""
    cache = LRUDict()
    model = OrderedDict()
    for key, value in ops:
        cache.put(key, value)
        model.pop(key, None)
        model[key] = value
    popped = []
    while True:
        item = cache.pop_lru()
        if item is None:
            break
        popped.append(item[0])
    assert popped == list(model)
