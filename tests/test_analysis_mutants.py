"""Mutation self-validation of the TP2xx domain and TP3xx protocol passes.

The acceptance gate for the flow analyses: every seeded mutant in
``repro.analysis.mutants`` — the TP2xx domain corpus and the TP3xx
protocol corpus alike — must be killed by its expected rule while the
pristine ``src`` tree stays clean.  One harness run analyzes the tree
once per mutant plus once pristine (~1 min); everything else here is
cheap corpus and plumbing checks.
"""

import pathlib

import pytest

from repro.analysis.__main__ import main
from repro.analysis.flow.domains import DOMAIN_RULES
from repro.analysis.flow.typestate import PROTOCOL_RULES
from repro.analysis.mutants import (DOMAIN_MUTANTS, MUTANTS,
                                    PROTOCOL_MUTANTS, Mutant,
                                    MutantApplyError, _apply,
                                    run_mutants)

ROOT = pathlib.Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Corpus shape
# ----------------------------------------------------------------------
def test_corpus_is_well_formed():
    assert len(DOMAIN_MUTANTS) >= 10
    assert len(PROTOCOL_MUTANTS) >= 8
    assert MUTANTS == DOMAIN_MUTANTS + PROTOCOL_MUTANTS
    assert len({m.mid for m in MUTANTS}) == len(MUTANTS)
    for mutant in DOMAIN_MUTANTS:
        assert mutant.rule in DOMAIN_RULES
        assert mutant.path.startswith(("repro/ftl/", "repro/ssd/"))
    for mutant in PROTOCOL_MUTANTS:
        assert mutant.rule in PROTOCOL_RULES
        assert mutant.path.startswith(
            ("repro/ftl/", "repro/ssd/", "repro/experiments/"))
    for mutant in MUTANTS:
        assert mutant.before != mutant.after
        assert (ROOT / "src" / mutant.path).is_file()


def test_corpus_covers_every_domain_rule():
    assert {m.rule for m in DOMAIN_MUTANTS} == set(DOMAIN_RULES)


def test_corpus_covers_every_protocol_rule():
    assert {m.rule for m in PROTOCOL_MUTANTS} == set(PROTOCOL_RULES)


def test_protocol_corpus_spans_the_advertised_bug_classes():
    """The ISSUE's named mutant classes are all represented: a deleted
    finally, a swapped acquire/release, a dropped lifecycle cleanup,
    and an early return before the release."""
    blurbs = " | ".join(m.description.lower() for m in PROTOCOL_MUTANTS)
    for needle in ("deleted finally", "swapped", "dropped",
                   "early return"):
        assert needle in blurbs, needle


def test_before_text_matches_head_exactly_once():
    """The drift guard the harness relies on, checked directly so a
    stale mutant fails fast with the offending file named."""
    for mutant in MUTANTS:
        text = (ROOT / "src" / mutant.path).read_text(encoding="utf-8")
        assert text.count(mutant.before) == 1, mutant.mid


def test_apply_rejects_drifted_before_text(tmp_path):
    (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
    drifted = Mutant(mid="MX", path="mod.py", rule="TP201",
                     description="drifted", before="y = 2", after="y")
    with pytest.raises(MutantApplyError, match="MX"):
        _apply(tmp_path, drifted)


def test_apply_and_restore_round_trip(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    mutant = Mutant(mid="MY", path="mod.py", rule="TP201",
                    description="swap", before="x = 1", after="x = 2")
    original = _apply(tmp_path, mutant)
    assert target.read_text(encoding="utf-8") == "x = 2\n"
    target.write_text(original, encoding="utf-8")
    assert target.read_text(encoding="utf-8") == "x = 1\n"


# ----------------------------------------------------------------------
# The acceptance gate (one full harness run)
# ----------------------------------------------------------------------
def test_every_mutant_killed_and_head_clean():
    report = run_mutants(
        src_root=str(ROOT / "src"),
        baseline=str(ROOT / ".analysis-baseline.json"))
    assert report.pristine_new == [], report.pristine_new
    survivors = [(r.mutant.mid, r.mutant.rule)
                 for r in report.survivors]
    assert survivors == []
    # each mutant is killed by its *expected* rule, not a bystander
    for result in report.results:
        rules = {f.rule for f in result.delta}
        assert result.mutant.rule in rules, (result.mutant.mid, rules)
    assert report.ok


# ----------------------------------------------------------------------
# CLI plumbing (cheap paths only)
# ----------------------------------------------------------------------
def test_cli_list_prints_corpus_without_running(capsys):
    assert main(["mutants", "--list"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == len(MUTANTS)
    assert lines[0].startswith("M01")
