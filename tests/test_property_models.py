"""Property-based tests on the analytical models and workload tools."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (ModelParams, avg_translation_time,
                          write_amplification,
                          write_amplification_counts)
from repro.workloads import SyntheticSpec, characterize, generate

ratios = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
positive_rw = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
valid_pages = st.floats(min_value=0.0, max_value=63.0, allow_nan=False)


def params_strategy():
    return st.builds(ModelParams, hr=ratios, prd=ratios, rw=positive_rw,
                     hgcr=ratios, vd=valid_pages, vt=valid_pages,
                     np=st.just(64))


class TestModelProperties:
    @given(p=params_strategy())
    @settings(max_examples=200, deadline=None)
    def test_eq12_eq13_identity(self, p):
        counts = write_amplification_counts(p)
        assert abs(counts.amplification - write_amplification(p)) < 1e-6

    @given(p=params_strategy())
    @settings(max_examples=200, deadline=None)
    def test_wa_at_least_one(self, p):
        assert write_amplification(p) >= 1.0 - 1e-9

    @given(p=params_strategy())
    @settings(max_examples=200, deadline=None)
    def test_translation_time_non_negative_and_bounded(self, p):
        t = avg_translation_time(p)
        assert 0.0 <= t <= 2 * p.tfr + p.tfw + 1e-9

    @given(p=params_strategy(), delta=st.floats(min_value=0.01,
                                                max_value=0.5))
    @settings(max_examples=100, deadline=None)
    def test_wa_monotone_in_hit_ratio(self, p, delta):
        if p.hr + delta > 1.0:
            return
        import dataclasses
        better = dataclasses.replace(p, hr=p.hr + delta)
        assert (write_amplification(better)
                <= write_amplification(p) + 1e-9)

    @given(p=params_strategy())
    @settings(max_examples=100, deadline=None)
    def test_counts_non_negative(self, p):
        counts = write_amplification_counts(p)
        assert counts.ntw >= 0
        assert counts.nmd >= 0
        assert counts.ndt >= 0
        assert counts.nmt >= 0


class TestSyntheticProperties:
    @given(seed=st.integers(min_value=0, max_value=2**16),
           write_ratio=ratios,
           seq=ratios,
           alpha=st.floats(min_value=1.0, max_value=64.0,
                           allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_generated_traces_always_valid(self, seed, write_ratio, seq,
                                           alpha):
        spec = SyntheticSpec(name="p", logical_pages=1024,
                             num_requests=200, write_ratio=write_ratio,
                             seq_read_fraction=seq,
                             seq_write_fraction=seq,
                             mean_read_pages=2.0, mean_write_pages=2.0,
                             zipf_alpha=alpha, seed=seed)
        trace = generate(spec)
        assert len(trace) == 200
        last_arrival = 0.0
        for request in trace:
            assert 0 <= request.lpn
            assert request.end_lpn <= 1024
            assert request.arrival >= last_arrival
            last_arrival = request.arrival
        stats = characterize(trace)
        assert 0.0 <= stats.write_ratio <= 1.0
        assert stats.footprint_pages <= 1024

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_generation_deterministic(self, seed):
        spec = SyntheticSpec(name="p", logical_pages=512,
                             num_requests=100, write_ratio=0.5,
                             seed=seed)
        a, b = generate(spec), generate(spec)
        assert [(r.op, r.lpn, r.npages) for r in a] == \
               [(r.op, r.lpn, r.npages) for r in b]
