"""FTLSan: full-rate acceptance sweep plus mutation-style corruption tests.

The acceptance half replays a 10k-request mixed read/write/trim workload
with the sanitizer sampling after **every** host page operation and
expects silence.  The mutation half then breaks each invariant on
purpose — by corrupting live FTL state or monkeypatching a buggy policy
in — and asserts that the sanitizer raises :class:`SanitizerError`
carrying exactly the rule code documented for that invariant.
"""

import dataclasses

import pytest

from repro.config import SanitizerConfig, TPFTLConfig
from repro.errors import SanitizerError
from repro.experiments.analysis import _build_ops, _sweep_row
from repro.ftl import FTL_NAMES, make_ftl
from repro.types import Op, Request


def _san(ftl):
    """The attached sanitizer, asserted present for the type checker."""
    sanitizer = ftl.sanitizer
    if sanitizer is None:
        raise AssertionError("sanitizer not attached")
    return sanitizer


def _warm(ftl, count, *, trims, seed):
    """Replay a deterministic mixed workload through ``ftl``."""
    for request in _build_ops(count, trims=trims, seed=seed):
        ftl.serve_request(request)


# ----------------------------------------------------------------------
# Acceptance: 10k ops at sampling interval 1, every FTL, no findings
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", FTL_NAMES)
def test_full_rate_10k_ops_clean(name):
    row = _sweep_row(name, 10_000)
    assert row[-1] == "clean"
    assert row[1] >= 10_000  # page ops meet the 10k-op bar
    assert row[3] > 0  # full sweeps actually ran


def test_sanitizer_absent_when_disabled(roomy_config):
    ftl = make_ftl("tpftl", roomy_config)
    assert ftl.sanitizer is None


def test_sanitizer_error_carries_code_and_op():
    error = SanitizerError("SAN005", "crossed the boundary", op_seq=42)
    assert error.code == "SAN005"
    assert "[SAN005 @ op 42]" in str(error)


# ----------------------------------------------------------------------
# SAN001: shadow page map vs. flash state
# ----------------------------------------------------------------------
def test_san001_lost_write(sanitized_config):
    ftl = make_ftl("dftl", sanitized_config)
    ftl.serve_request(Request(arrival=0.0, op=Op.WRITE, lpn=3, npages=1))
    # the mapped page silently dies under the FTL
    ftl.flash.invalidate(ftl.lookup_current(3))
    with pytest.raises(SanitizerError) as excinfo:
        _san(ftl).run_checks(full=True)
    assert excinfo.value.code == "SAN001"


def test_san001_trim_left_mapped(sanitized_config):
    ftl = make_ftl("dftl", sanitized_config)
    ftl.serve_request(Request(arrival=0.0, op=Op.WRITE, lpn=9, npages=1))
    ppn = ftl.lookup_current(9)
    ftl.serve_request(Request(arrival=1.0, op=Op.TRIM, lpn=9, npages=1))
    # resurrect the stale mapping behind the host's back (the cached
    # cell would mask the table, so drop it too)
    ftl.flash_table[9] = ppn
    ftl.cmt.remove(9)
    with pytest.raises(SanitizerError) as excinfo:
        _san(ftl).run_checks(full=True)
    assert excinfo.value.code == "SAN001"


# ----------------------------------------------------------------------
# SAN002/SAN003/SAN004: TPFTL cache structure, hotness, budget
# ----------------------------------------------------------------------
def _warm_tpftl(config, count=300, seed=7):
    ftl = make_ftl("tpftl", config)
    _warm(ftl, count, trims=True, seed=seed)
    return ftl


def test_san002_unindexed_entry(sanitized_config):
    ftl = _warm_tpftl(sanitized_config)
    node = next(iter(ftl.page_list))
    entry = next(iter(node.entries))
    del node.by_lpn[entry.lpn]
    with pytest.raises(SanitizerError) as excinfo:
        _san(ftl).run_checks()
    assert excinfo.value.code == "SAN002"


def test_san003_hot_sum_drift(sanitized_config):
    ftl = _warm_tpftl(sanitized_config)
    node = next(iter(ftl.page_list))
    node.hot_sum += 5
    with pytest.raises(SanitizerError) as excinfo:
        _san(ftl).run_checks()
    assert excinfo.value.code == "SAN003"


def test_san004_budget_leak(sanitized_config):
    ftl = _warm_tpftl(sanitized_config)
    # leak one entry's worth of accounting: recount > budget.used
    ftl.budget.release(ftl.entry_bytes)
    with pytest.raises(SanitizerError) as excinfo:
        _san(ftl).run_checks()
    assert excinfo.value.code == "SAN004"


# ----------------------------------------------------------------------
# SAN005: prefetch must stay inside one translation page (§4.5)
# ----------------------------------------------------------------------
def test_san005_plan_crosses_boundary(sanitized_config, monkeypatch):
    ftl = make_ftl("tpftl", sanitized_config)
    # buggy planner: prefetches into a different translation page
    monkeypatch.setattr(ftl, "_plan_prefetch",
                        lambda lpn, vtpn, request: [500])
    with pytest.raises(SanitizerError) as excinfo:
        ftl.serve_request(Request(arrival=0.0, op=Op.READ, lpn=5,
                                  npages=1))
    assert excinfo.value.code == "SAN005"
    assert ftl.geometry.vtpn_of(5) != ftl.geometry.vtpn_of(500)


# ----------------------------------------------------------------------
# SAN006: prefetch-induced eviction confined to one TP node (§4.5)
# ----------------------------------------------------------------------
def test_san006_eviction_spans_nodes(sanitized_config, monkeypatch):
    ftl = make_ftl("tpftl", sanitized_config)
    for lpn in range(384):  # fill the cache well past its budget
        ftl.serve_request(Request(arrival=float(lpn), op=Op.WRITE,
                                  lpn=lpn, npages=1))
    state = {"turn": 0}

    def scattering_make_room(need, result, only_node=None, protect=None):
        # buggy replacement: rotates victims across every TP node,
        # ignoring the single-node confinement rule
        while not ftl.budget.fits(need):
            nodes = [node for node in ftl.page_list if len(node)]
            victim = nodes[state["turn"] % len(nodes)]
            state["turn"] += 1
            if not ftl._evict_one(victim, result, protect=protect):
                return False
        return True

    monkeypatch.setattr(ftl, "_make_room", scattering_make_room)
    with pytest.raises(SanitizerError) as excinfo:
        # miss on an uncached translation page with a 4-page request:
        # the 3-entry prefetch forces evictions while the cache is full
        ftl.serve_request(Request(arrival=1000.0, op=Op.READ, lpn=448,
                                  npages=4))
    assert excinfo.value.code == "SAN006"


# ----------------------------------------------------------------------
# SAN007: clean-first victim selection (§4.4)
# ----------------------------------------------------------------------
def test_san007_dirty_victim_despite_clean(sanitized_config, monkeypatch):
    ftl = make_ftl("tpftl", sanitized_config)

    def lru_only(node, protect=None):
        # buggy policy: plain LRU, ignoring the clean-first rule
        for entry in node.entries.iter_lru():
            if entry is not protect:
                return entry
        return None

    monkeypatch.setattr(ftl, "_choose_victim", lru_only)
    with pytest.raises(SanitizerError) as excinfo:
        _warm(ftl, 2_000, trims=True, seed=3)
    assert excinfo.value.code == "SAN007"


# ----------------------------------------------------------------------
# SAN008: batch update leaves the victim's node all-clean (§4.4)
# ----------------------------------------------------------------------
def test_san008_forgotten_batch(sanitized_config, monkeypatch):
    config = dataclasses.replace(sanitized_config,
                                 tpftl=TPFTLConfig(clean_first=False))
    ftl = make_ftl("tpftl", config)

    def lazy_writeback(node, victim, result):
        # buggy writeback: flushes only the victim, leaving its
        # neighbours dirty although batch_update is enabled
        node.set_dirty(victim, False)
        ftl.read_translation_page(node.vtpn, "writeback", result)
        ftl.write_translation_page(node.vtpn,
                                   {victim.lpn: victim.ppn},
                                   "writeback", result)
        _san(ftl).note_writeback(ftl, node, victim)

    monkeypatch.setattr(ftl, "_writeback", lazy_writeback)
    with pytest.raises(SanitizerError) as excinfo:
        _warm(ftl, 2_000, trims=False, seed=5)
    assert excinfo.value.code == "SAN008"


# ----------------------------------------------------------------------
# SAN009: flash page state machine
# ----------------------------------------------------------------------
def test_san009_counter_corruption(sanitized_config):
    ftl = make_ftl("dftl", sanitized_config)
    _warm(ftl, 50, trims=False, seed=13)
    ftl.flash.blocks[0].valid_count += 1
    with pytest.raises(SanitizerError) as excinfo:
        _san(ftl).run_checks(full=True)
    assert excinfo.value.code == "SAN009"


# ----------------------------------------------------------------------
# Rule selection: config.rules restricts what fires
# ----------------------------------------------------------------------
def test_rules_filter_disables_checker(sanitized_config):
    config = dataclasses.replace(
        sanitized_config,
        sanitizer=SanitizerConfig(enabled=True, interval=1,
                                  rules=frozenset({"SAN001"})))
    ftl = _warm_tpftl(config)
    node = next(iter(ftl.page_list))
    node.hot_sum += 5  # would be SAN003, which is filtered out
    _san(ftl).run_checks()  # does not raise
    assert _san(ftl).config.wants("SAN001")
    assert not _san(ftl).config.wants("SAN003")
