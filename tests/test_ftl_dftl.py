"""DFTL behaviour: demand loading, LRU eviction, one-entry writebacks."""

import pytest

from repro.config import CacheConfig, SimulationConfig, SSDConfig
from repro.errors import CacheCapacityError
from repro.ftl import DFTL


def small_dftl(capacity_entries: int, logical_pages: int = 512) -> DFTL:
    """A DFTL whose CMT holds exactly ``capacity_entries`` entries."""
    ssd = SSDConfig(logical_pages=logical_pages, page_size=256,
                    pages_per_block=8)
    budget = ssd.gtd_bytes + capacity_entries * 8
    config = SimulationConfig(ssd=ssd,
                              cache=CacheConfig(budget_bytes=budget))
    ftl = DFTL(config)
    assert ftl.capacity_entries == capacity_entries
    return ftl


class TestDemandLoading:
    def test_first_access_misses_and_loads(self):
        ftl = small_dftl(4)
        result = ftl.read_page(10)
        assert ftl.metrics.lookups == 1
        assert ftl.metrics.hits == 0
        assert ftl.metrics.trans_reads_load == 1
        assert result.translation_reads == 1

    def test_second_access_hits(self):
        ftl = small_dftl(4)
        ftl.read_page(10)
        result = ftl.read_page(10)
        assert ftl.metrics.hits == 1
        assert result.translation_reads == 0

    def test_miss_loads_only_one_entry(self):
        ftl = small_dftl(4)
        ftl.read_page(10)
        assert ftl.cached_entry_count == 1
        assert ftl.cache_peek(11) is None


class TestEviction:
    def test_lru_entry_evicted_at_capacity(self):
        ftl = small_dftl(2)
        ftl.read_page(1)
        ftl.read_page(2)
        ftl.read_page(3)  # evicts 1
        assert ftl.cache_peek(1) is None
        assert ftl.cache_peek(2) is not None
        assert ftl.metrics.replacements == 1

    def test_clean_eviction_costs_nothing(self):
        ftl = small_dftl(2)
        ftl.read_page(1)
        ftl.read_page(2)
        before = ftl.metrics.translation_page_writes
        ftl.read_page(3)
        assert ftl.metrics.translation_page_writes == before
        assert ftl.metrics.dirty_replacements == 0

    def test_dirty_eviction_reads_and_writes_translation_page(self):
        ftl = small_dftl(2)
        ftl.write_page(1)   # dirty entry
        ftl.read_page(2)
        ftl.read_page(3)    # evicts dirty 1: read-modify-write
        assert ftl.metrics.dirty_replacements == 1
        assert ftl.metrics.trans_reads_writeback == 1
        assert ftl.metrics.trans_writes_writeback == 1

    def test_dirty_eviction_updates_flash_table(self):
        ftl = small_dftl(2)
        ftl.write_page(1)
        new_ppn = ftl.cache_peek(1)
        assert ftl.flash_table[1] != new_ppn  # divergent while dirty
        ftl.read_page(2)
        ftl.read_page(3)  # evict dirty entry for 1
        assert ftl.flash_table[1] == new_ppn

    def test_one_writeback_per_dirty_eviction(self):
        """The §3.2 inefficiency: co-dirty entries are NOT batched."""
        ftl = small_dftl(3)
        ftl.write_page(1)
        ftl.write_page(2)  # same translation page, both dirty
        ftl.write_page(3)
        before = ftl.metrics.trans_writes_writeback
        ftl.read_page(10)
        ftl.read_page(11)
        ftl.read_page(12)  # evict all three dirty entries, one by one
        assert ftl.metrics.trans_writes_writeback - before == 3


class TestWriteSemantics:
    def test_write_marks_entry_dirty(self):
        ftl = small_dftl(4)
        ftl.write_page(5)
        grouped = ftl._dirty_entries_by_page()
        vtpn = ftl.geometry.vtpn_of(5)
        assert 5 in grouped[vtpn]

    def test_write_then_read_hits_cache(self):
        ftl = small_dftl(4)
        ftl.write_page(5)
        ftl.read_page(5)
        assert ftl.metrics.hits == 1

    def test_lookup_current_prefers_cache(self):
        ftl = small_dftl(4)
        ftl.write_page(5)
        assert ftl.lookup_current(5) == ftl.cache_peek(5)


class TestSnapshot:
    def test_snapshot_groups_by_translation_page(self):
        ftl = small_dftl(8)
        epp = ftl.geometry.entries_per_page
        ftl.read_page(0)
        ftl.read_page(1)        # same page
        ftl.write_page(epp)     # next page, dirty
        snapshot = sorted(ftl.cache_snapshot())
        assert snapshot == [(1, 1), (2, 0)]


class TestCapacityValidation:
    def test_budget_below_one_entry_rejected(self):
        ssd = SSDConfig(logical_pages=512, page_size=256,
                        pages_per_block=8)
        config = SimulationConfig(
            ssd=ssd, cache=CacheConfig(budget_bytes=ssd.gtd_bytes + 4))
        with pytest.raises(CacheCapacityError):
            DFTL(config)
