"""Unit tests for the shared value types."""

import pytest

from repro.types import (AccessResult, Op, Request, RequestTiming, Trace,
                         UNMAPPED)


class TestOp:
    def test_write_flag(self):
        assert Op.WRITE.is_write
        assert not Op.READ.is_write

    def test_values_distinct(self):
        assert Op.READ is not Op.WRITE


class TestRequest:
    def test_pages_iterates_span(self):
        request = Request(arrival=0.0, op=Op.READ, lpn=10, npages=3)
        assert list(request.pages()) == [10, 11, 12]

    def test_end_lpn(self):
        request = Request(arrival=0.0, op=Op.WRITE, lpn=5, npages=2)
        assert request.end_lpn == 7

    def test_is_write(self):
        assert Request(arrival=0, op=Op.WRITE, lpn=0, npages=1).is_write
        assert not Request(arrival=0, op=Op.READ, lpn=0,
                           npages=1).is_write

    def test_rejects_zero_pages(self):
        with pytest.raises(ValueError):
            Request(arrival=0.0, op=Op.READ, lpn=0, npages=0)

    def test_rejects_negative_lpn(self):
        with pytest.raises(ValueError):
            Request(arrival=0.0, op=Op.READ, lpn=-1, npages=1)

    def test_frozen(self):
        request = Request(arrival=0.0, op=Op.READ, lpn=0, npages=1)
        with pytest.raises(AttributeError):
            request.lpn = 5


class TestAccessResult:
    def test_merge_accumulates_all_fields(self):
        a = AccessResult(data_reads=1, data_writes=2,
                         translation_reads=3, translation_writes=4,
                         erases=5, gc_data_reads=1, gc_data_writes=1,
                         gc_translation_reads=1, gc_translation_writes=1)
        b = AccessResult(data_reads=10, data_writes=20,
                         translation_reads=30, translation_writes=40,
                         erases=50, gc_data_reads=2, gc_data_writes=2,
                         gc_translation_reads=2, gc_translation_writes=2)
        a.merge(b)
        assert a.data_reads == 11
        assert a.data_writes == 22
        assert a.translation_reads == 33
        assert a.translation_writes == 44
        assert a.erases == 55
        assert a.gc_data_reads == 3
        assert a.gc_translation_writes == 3

    def test_totals(self):
        result = AccessResult(data_reads=2, translation_reads=3,
                              data_writes=4, translation_writes=5)
        assert result.total_reads == 5
        assert result.total_writes == 9

    def test_service_time_weights_latencies(self):
        result = AccessResult(data_reads=2, translation_reads=1,
                              data_writes=1, translation_writes=1,
                              erases=1)
        time = result.service_time(read_us=25.0, write_us=200.0,
                                   erase_us=1500.0)
        assert time == pytest.approx(3 * 25.0 + 2 * 200.0 + 1500.0)

    def test_empty_service_time_is_zero(self):
        assert AccessResult().service_time(25, 200, 1500) == 0.0


class TestRequestTiming:
    def test_response_and_queue_delay(self):
        timing = RequestTiming(arrival=100.0, start=150.0, finish=400.0)
        assert timing.response_time == pytest.approx(300.0)
        assert timing.queue_delay == pytest.approx(50.0)

    def test_no_queueing(self):
        timing = RequestTiming(arrival=10.0, start=10.0, finish=35.0)
        assert timing.queue_delay == 0.0
        assert timing.response_time == pytest.approx(25.0)


class TestTrace:
    def test_len_iter_getitem(self):
        requests = [Request(arrival=float(i), op=Op.READ, lpn=i,
                            npages=1) for i in range(3)]
        trace = Trace(requests=requests, logical_pages=10)
        assert len(trace) == 3
        assert trace[1].lpn == 1
        assert [r.lpn for r in trace] == [0, 1, 2]

    def test_max_lpn(self):
        trace = Trace(requests=[
            Request(arrival=0.0, op=Op.READ, lpn=3, npages=4),
            Request(arrival=1.0, op=Op.WRITE, lpn=0, npages=1),
        ], logical_pages=10)
        assert trace.max_lpn() == 6

    def test_max_lpn_empty(self):
        assert Trace().max_lpn() is None


def test_unmapped_sentinel_is_negative():
    assert UNMAPPED < 0
