"""Lint fixture: exactly one deliberate violation per TP rule.

This module is never imported — ``tests/test_analysis_lint.py`` feeds
it to ``repro.analysis.lint`` by path and asserts that every rule code
(TP001–TP006) fires on it.  Keep one violation per rule so the test
can pin the expected finding counts.
"""

import random
import time


def tp001_global_rng() -> int:
    """TP001: draws from the process-global RNG."""
    return random.randint(0, 7)


def tp002_wall_clock() -> float:
    """TP002: reads the wall clock inside simulation code."""
    return time.time()


def tp003_bare_assert(value: int) -> None:
    """TP003: bare assert, stripped under ``python -O``."""
    assert value >= 0


def tp004_config_mutation(config) -> None:
    """TP004: mutates a frozen config dataclass."""
    config.page_size = 4096


class LRUNode:
    """Stand-in root so TP005 resolves without importing repro."""

    __slots__ = ("prev", "next")


class UnslottedNode(LRUNode):
    """TP005: LRUNode subclass without ``__slots__``."""


def tp006_flash_bypass(block) -> None:
    """TP006: flash page operation bypassing FlashMemory."""
    block.program(0, meta=0)
