"""Fixture: TP301 — fast-mode window without a ``finally``.

``replay`` enters the flash fast mode and exits it at the end of the
happy path, but ``serve`` may raise mid-loop; on that exception edge
the function unwinds with fast mode still held, silently corrupting
every deferred counter.  The typestate pass must flag exactly the
acquire site — the PR-8 bug class ``try/finally`` exists to prevent.
"""


class Replayer:
    def replay(self, flash, requests):
        flash.enter_fast_mode()
        for request in requests:
            self.serve(request)
        flash.exit_fast_mode()

    def serve(self, request):
        if request is None:
            raise ValueError("empty request slot")
