"""Fixture: TP305 — a with-able resource managed by hand.

``load_trace`` opens and closes the handle on the normal path, so it
is not a TP301 leak — but nothing protects the window in between, and
an exception while parsing unwinds past the ``close()``.  The
typestate pass must flag exactly the ``open`` site and recommend a
``with`` block.
"""


def load_trace(path):
    handle = open(path, encoding="utf-8")
    lines = handle.readlines()
    handle.close()
    return lines
