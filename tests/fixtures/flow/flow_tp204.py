"""Fixture: TP204 — an entry count charged against a byte budget.

``admit`` passes a number of cache entries to ``Budget.charge``,
whose ``nbytes`` parameter is byte-typed: the size-accounting
confusion the DFTL/TPFTL byte-budget model exists to prevent.
"""


class Budget:
    def __init__(self, capacity_bytes):
        self.capacity_bytes = capacity_bytes

    def charge(self, nbytes):
        self.capacity_bytes -= nbytes


class Cache:
    def __init__(self):
        self.budget = Budget(4096)

    def admit(self, capacity_entries):
        self.budget.charge(capacity_entries)
