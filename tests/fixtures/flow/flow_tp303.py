"""Fixture: TP303 — a started worker process is never joined.

``launch`` starts a worker and falls off the end of the function
without ``join()``/``terminate()`` and without handing the process
off to any tracking structure — the leaked-worker shape the PR-6
supervisor's lifecycle bookkeeping exists to prevent.  The typestate
pass must flag exactly the spawn.
"""


def launch(ctx, target):
    worker = ctx.Process(target=target, daemon=True)
    worker.start()
