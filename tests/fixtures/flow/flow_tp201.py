"""Fixture: TP201 — an LPN flowing into a PPN-typed parameter.

``serve`` hands the logical page number straight to
``Flash.invalidate``, whose ``ppn`` parameter is pinned to the PPN
domain by its name.  The domain pass must flag exactly that call
site — the classic forgot-to-translate bug.
"""


class Flash:
    def invalidate(self, ppn):
        self.last_dead = ppn


class FTL:
    def __init__(self):
        self.flash = Flash()

    def serve(self, lpn):
        self.flash.invalidate(lpn)
