"""TP103 fixture: a frozen config's mutable field escaping.

``SanitizerHarness`` grabs the rule set off a frozen config and later
mutates it in place.  Because the attribute *aliases* the config
field, the mutation writes through to the shared config object — every
other holder of the config silently sees the change, and two runs
"with the same config" are no longer the same run.
"""


class SanitizerHarness:
    """Keeps a live view of the config's rule selection (wrongly)."""

    def __init__(self, config):
        self.interval = config.interval
        self.rules = config.rules  # aliases the frozen config's field

    def mute(self, code):
        self.rules.remove(code)  # writes through to the config
