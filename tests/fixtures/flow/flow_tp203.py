"""Fixture: TP203 — milliseconds flowing into a microsecond clock.

``run`` forwards a ``*_ms`` value to ``absorb``, whose parameter is
pinned to microseconds by its ``_us`` suffix: a silent 1000x timing
error the domain pass must flag at the call site.
"""


class Device:
    def __init__(self):
        self.busy_us = 0.0

    def absorb(self, service_us):
        self.busy_us += service_us

    def run(self, response_ms):
        self.absorb(response_ms)
