"""Fixture: TP304 — run path entered without the per-run reset.

``run`` dispatches into ``serve_request`` without ``_reset_state``
dominating it, so a reused device replays with the previous run's
queue state — the PR-4 channel-cursor bug class, caught here as an
ordering violation instead of a missing re-initialization.  The
typestate pass must flag exactly the dispatch site.
"""


class DeviceModel:
    def _reset_state(self):
        self.busy = 0.0

    def serve_request(self, request):
        self.busy += request.service_us


class UnresetDevice(DeviceModel):
    def run(self, trace):
        for request in trace:
            self.serve_request(request)
