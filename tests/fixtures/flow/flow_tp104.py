"""TP104 fixture: unordered set iteration on the simulation path.

``_flush_dirty`` iterates a ``set`` of dirty pages while serving the
run path; with string/object elements the iteration order varies per
process (hash randomization), so the flash write order — and with it
GC timing and every downstream statistic — stops being replayable.
The reporting helper iterates a set too, but it is *not* reachable
from the run path and must not be flagged.
"""


class SetIterDevice:
    """A device model that flushes a set-typed dirty list in set order."""

    def __init__(self):
        self._dirty = set()

    def run(self, trace):
        for request in trace:
            self._dirty.add(request.lpn)
        self._flush_dirty()

    def _flush_dirty(self):
        for lpn in self._dirty:  # nondeterministic order
            self.writeback(lpn)
        remaining = {1, 2, 3}
        for lpn in sorted(remaining):  # deterministic: not flagged
            self.writeback(lpn)


def report(pages):
    """Off the run path: set iteration here is none of TP104's business."""
    seen = {p for p in pages}
    for page in seen:
        print(page)
