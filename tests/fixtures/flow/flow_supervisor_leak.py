"""Fixture: the PR-6 supervisor worker-lifecycle leak, reproduced.

``_launch`` mirrors the supervised runner's spawn path: a one-way pipe
is created, the child end rides into the worker process, the worker is
started.  On the happy path both the process and the parent end are
handed off to the running-table record (ownership transfer — not a
leak).  But when ``start()`` raises (fork failure, fd exhaustion),
this version just requeues and returns: the parent pipe end is never
closed and a possibly-started worker is never terminated — exactly the
shape the real ``supervisor.py`` fixes with ``_discard_spawn`` in the
``except`` arm, which is why TP303 must flag this fixture while the
fixed ``src/repro/experiments/supervisor.py`` stays clean.
"""


class LeakySupervisor:
    def __init__(self, ctx):
        self._ctx = ctx
        self._running = {}
        self._queue = []

    def _launch(self, task):
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        try:
            process = self._ctx.Process(
                target=task.fn, args=(child_conn, task.key), daemon=True)
            process.start()
            child_conn.close()
        except OSError:
            # BUG: parent_conn is never closed and a started-but-
            # untracked process is never terminated on this path
            self._queue.append(task)
            return None
        self._running[task.key] = (process, parent_conn)
        return task.key
