"""TP102 fixture: the PR-2 hybrid ``_invalidate_remaining`` bypass.

The merge path never touches a flash page directly — it calls a
helper, and the helper invalidates pages on the raw block, bypassing
``FlashMemory`` (and therefore the ``FaultInjector``).  The
single-node TP006 rule flags the helper's direct call; the
interprocedural TP102 must flag the *merge path's call into the
helper*, one level of indirection away from the mutation.
"""


class LeakyHybridFTL:
    """A hybrid FTL whose switch-merge hides flash ops in a helper."""

    def _switch_merge(self, lbn, old_data):
        self.block_map[lbn] = self.log_block
        self._invalidate_remaining(old_data)

    def _invalidate_remaining(self, block):
        for offset in block.valid_offsets():
            block.invalidate(offset)
