"""TP101 fixture: the PR-4 channel-queue leak, reproduced.

Per-channel queue state (``_busy``) and the striping cursor
(``_cursor``) are initialized in ``__init__``, mutated on the dispatch
path, but the reset path re-initializes only ``_busy`` — exactly the
bug PR 4 fixed in ``repro.ssd.parallel``: a reused device inherited
the previous replay's cursor, skewing every subsequent run.

The flow pass must flag ``_cursor`` (mutated in ``_dispatch``, absent
from ``_reset_queues``) and must NOT flag ``_busy`` (reset correctly)
or the fixed ``src/repro/ssd/parallel.py``.
"""


class LeakyChannelDevice:
    """A multi-channel device model whose reset path forgets state."""

    def __init__(self, channels):
        self.channels = channels
        self._busy = [0.0] * channels
        self._cursor = 0

    def _reset_queues(self):
        self._busy = [0.0] * self.channels
        # BUG: self._cursor is not re-initialized here

    def run(self, trace):
        self._reset_queues()
        for request in trace:
            self._dispatch(request)

    def _dispatch(self, request):
        channel = self._cursor
        self._cursor = (self._cursor + 1) % self.channels
        self._busy[channel] += request.service_us
