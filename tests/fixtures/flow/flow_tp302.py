"""Fixture: TP302 — ``fold_stats`` after the fast-mode window closed.

The fold only makes sense while fast mode is held (that is when the
per-op counters are deferred); folding after ``exit_fast_mode`` reads
a window that no longer exists.  The typestate pass must flag exactly
the ``fold_stats`` call.
"""


def warmup_fold(flash):
    flash.enter_fast_mode()
    flash.exit_fast_mode()
    flash.fold_stats()
