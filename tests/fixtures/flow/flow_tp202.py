"""Fixture: TP202 — arithmetic mixing two address domains.

Subtracting a physical page number from a logical one never yields a
meaningful quantity (the two address spaces share no origin); the
domain pass must flag the expression exactly once.
"""


def distance(lpn, ppn):
    return lpn - ppn
