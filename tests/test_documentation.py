"""Documentation quality gates.

Every module, public class and public function in ``repro`` must carry
a docstring (deliverable (e) of the reproduction: doc comments on every
public item), the README's quickstart snippet must actually run, and
the rule tables in ``docs/architecture.md`` must list exactly the
codes the analysis registries define (no phantom or undocumented
rules).
"""

import ast
import pathlib
import re

import pytest

from repro.analysis.checkers import SAN_RULES
from repro.analysis.flow import DOMAIN_RULES, FLOW_RULES, PROTOCOL_RULES
from repro.analysis.lint import RULES

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
MODULES = sorted(SRC.rglob("*.py"))


def _public_defs(tree):
    """Top-level and class-level public defs in a module AST."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if not node.name.startswith("_"):
                yield node
            if isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        if not sub.name.startswith("_"):
                            yield sub


@pytest.mark.parametrize("path", MODULES,
                         ids=[str(m.relative_to(SRC)) for m in MODULES])
def test_module_has_docstring(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    assert ast.get_docstring(tree), f"{path} lacks a module docstring"


@pytest.mark.parametrize("path", MODULES,
                         ids=[str(m.relative_to(SRC)) for m in MODULES])
def test_public_items_have_docstrings(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = []
    for node in _public_defs(tree):
        if ast.get_docstring(node) is None:
            # trivial dunder-ish accessors are exempt by convention
            if node.name in ("main",):
                continue
            missing.append(f"{node.name} (line {node.lineno})")
    assert not missing, f"{path}: missing docstrings: {missing}"


def test_readme_quickstart_runs():
    """The README's quickstart code must execute as written."""
    readme = (SRC.parent.parent / "README.md").read_text("utf-8")
    start = readme.index("```python") + len("```python")
    end = readme.index("```", start)
    snippet = readme[start:end]
    # shrink the workload so the doc test stays fast
    snippet = snippet.replace("num_requests=30_000",
                              "num_requests=1_000")
    snippet = snippet.replace("warmup_requests=8_000",
                              "warmup_requests=200")
    namespace = {}
    exec(compile(snippet, "<README quickstart>", "exec"), namespace)


def test_design_and_experiments_docs_exist():
    root = SRC.parent.parent
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = root / name
        assert path.exists(), name
        assert len(path.read_text("utf-8")) > 500, name


def _documented_codes(text, prefix):
    """Rule codes introduced as ``* **CODE — ...`` bullets."""
    return set(re.findall(rf"^\* \*\*({prefix}\d+) — ",
                          text, flags=re.MULTILINE))


def test_architecture_rule_tables_match_registries():
    """docs/architecture.md documents exactly the registered rules.

    Adding a rule without documenting it — or documenting a rule that
    no longer exists — fails here, keeping the rule tables (TP lint,
    TP flow, TP domain, TP typestate, SAN sanitizer) from drifting out
    of sync with ``RULES``, ``FLOW_RULES``, ``DOMAIN_RULES``,
    ``PROTOCOL_RULES`` and ``SAN_RULES``.
    """
    text = (SRC.parent.parent / "docs" / "architecture.md").read_text(
        "utf-8")
    documented_tp = _documented_codes(text, "TP")
    documented_san = _documented_codes(text, "SAN")
    assert documented_tp == (set(RULES) | set(FLOW_RULES)
                             | set(DOMAIN_RULES) | set(PROTOCOL_RULES))
    assert documented_san == set(SAN_RULES)
