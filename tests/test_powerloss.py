"""Power-loss torture: cut power mid-workload at many points, recover
by flash scan, and hold every FTL to the acknowledged-ops contract."""

import pytest

from repro.errors import FTLError, PowerLossError
from repro.faults import powerloss
from repro.ftl import make_ftl
from repro.types import Op, PageKind

from test_integration import ALL_FTLS, config_for

#: FTLs whose block-granular layout forbids TRIM
BLOCK_MAPPED = ("block", "hybrid")


def ops_for(name, config, count=300, seed=3):
    trim = 0.0 if name in BLOCK_MAPPED else 0.1
    return powerloss.default_ops(count, config.ssd.logical_pages,
                                 seed=seed, trim_ratio=trim)


class TestSweep:
    @pytest.mark.parametrize("name", ALL_FTLS)
    def test_fifty_cut_points_survive(self, name):
        """The acceptance sweep: >= 50 cut points per FTL, all of which
        must recover with both crash invariants intact."""
        config = config_for(name)
        report = powerloss.torture_sweep(
            name, config, ops=ops_for(name, config),
            cut_points=powerloss.default_cut_points(50))
        assert len(report.outcomes) == 50
        # the sweep must actually exercise crashes, not run to completion
        assert report.cuts_fired == 50

    @pytest.mark.parametrize("name", ("dftl", "tpftl"))
    def test_sweep_is_deterministic(self, name):
        config = config_for(name)
        ops = ops_for(name, config, count=120)
        cuts = powerloss.default_cut_points(8, start=5, stride=13)
        first = powerloss.torture_sweep(name, config, ops=ops,
                                        cut_points=cuts)
        second = powerloss.torture_sweep(name, config, ops=ops,
                                         cut_points=cuts)
        assert first.outcomes == second.outcomes

    def test_late_cut_point_lets_workload_finish(self, tiny_config):
        ops = ops_for("dftl", tiny_config, count=20)
        outcome = powerloss.run_with_cut("dftl", tiny_config, ops,
                                         cut_after=10_000_000)
        assert not outcome.fired
        assert outcome.ops_acknowledged == len(ops)

    def test_acknowledged_ops_grow_with_cut_point(self, tiny_config):
        ops = ops_for("dftl", tiny_config, count=200)
        early = powerloss.run_with_cut("dftl", tiny_config, ops, 5)
        late = powerloss.run_with_cut("dftl", tiny_config, ops, 400)
        assert early.fired and late.fired
        assert early.ops_acknowledged <= late.ops_acknowledged


class TestVerification:
    def test_lost_acknowledged_write_detected(self, tiny_config):
        """If an acked write's page is wiped from flash, the verifier
        must notice the contract violation."""
        ftl = make_ftl("optimal", tiny_config)
        ftl.write_page(7)
        ppn = ftl.lookup_current(7)
        ftl.flash.invalidate(ppn)  # forge the loss
        with pytest.raises(FTLError):
            powerloss.verify_crash_state(
                ftl.flash, tiny_config.ssd.logical_pages,
                acked={7: Op.WRITE})

    def test_duplicate_claim_detected(self, tiny_config):
        ftl = make_ftl("optimal", tiny_config)
        ftl.flash.program(PageKind.DATA, meta=3)  # second claim on LPN 3
        with pytest.raises(FTLError):
            powerloss.verify_crash_state(
                ftl.flash, tiny_config.ssd.logical_pages, acked={})

    def test_in_flight_op_is_exempt(self, tiny_config):
        ftl = make_ftl("optimal", tiny_config)
        ftl.write_page(7)
        ppn = ftl.lookup_current(7)
        ftl.flash.invalidate(ppn)
        # same forged loss, but LPN 7 was the op power interrupted
        powerloss.verify_crash_state(
            ftl.flash, tiny_config.ssd.logical_pages,
            acked={7: Op.WRITE}, in_flight_lpn=7)

    def test_resurrected_trim_detected(self, tiny_config):
        ftl = make_ftl("dftl", tiny_config)
        # device is prefilled: LPN 3 is mapped, so an acked TRIM on it
        # reads as resurrected data after the crash
        with pytest.raises(FTLError):
            powerloss.verify_crash_state(
                ftl.flash, tiny_config.ssd.logical_pages,
                acked={3: Op.TRIM})


class TestHelpers:
    def test_default_cut_points_shape(self):
        points = powerloss.default_cut_points(50, start=1, stride=7)
        assert len(points) == 50
        assert points[0] == 1
        assert points[1] - points[0] == 7
        assert len(set(points)) == 50

    def test_default_ops_deterministic_and_in_range(self):
        a = powerloss.default_ops(100, 512, seed=5, trim_ratio=0.1)
        b = powerloss.default_ops(100, 512, seed=5, trim_ratio=0.1)
        assert a == b
        assert all(0 <= lpn < 512 for _, lpn in a)
        assert any(op is Op.TRIM for op, _ in a)
        assert any(op is Op.WRITE for op, _ in a)

    def test_report_properties(self, tiny_config):
        ops = ops_for("dftl", tiny_config, count=60)
        report = powerloss.torture_sweep(
            "dftl", tiny_config, ops=ops,
            cut_points=powerloss.default_cut_points(4))
        assert report.cut_points == [1, 8, 15, 22]
        assert 0 <= report.cuts_fired <= 4


class TestInjectorContract:
    def test_power_loss_error_raised_mid_gc_is_clean(self, tiny_config):
        """A cut landing inside GC must still leave scannable flash."""
        ftl = make_ftl("dftl", tiny_config)
        ftl.flash.injector.arm_power_loss(0)
        with pytest.raises(PowerLossError):
            ftl.write_page(0)
        ftl.flash.injector.disarm_power_loss()
        powerloss.verify_crash_state(
            ftl.flash, tiny_config.ssd.logical_pages, acked={})
