"""Unit tests for the flash array: frontiers, stats, space accounting."""

import pytest

from repro.config import SSDConfig
from repro.errors import FlashError, OutOfSpaceError
from repro.flash import FlashMemory
from repro.types import BlockKind, PageKind


@pytest.fixture
def flash() -> FlashMemory:
    config = SSDConfig(logical_pages=256, page_size=256,
                       pages_per_block=8)
    return FlashMemory(config)


class TestAddressing:
    def test_ppn_round_trip(self, flash):
        ppn = flash.ppn_of(3, 5)
        assert flash.block_id_of(ppn) == 3
        assert flash.offset_of(ppn) == 5
        assert flash.block_of(ppn).block_id == 3


class TestProgramming:
    def test_program_fills_active_block_sequentially(self, flash):
        first = flash.program(PageKind.DATA, meta=10)
        second = flash.program(PageKind.DATA, meta=11)
        assert flash.block_id_of(first) == flash.block_id_of(second)
        assert flash.offset_of(second) == flash.offset_of(first) + 1

    def test_full_block_rolls_to_new_block(self, flash):
        ppns = [flash.program(PageKind.DATA, meta=i) for i in range(9)]
        assert flash.block_id_of(ppns[8]) != flash.block_id_of(ppns[0])

    def test_regions_use_separate_frontiers(self, flash):
        data = flash.program(PageKind.DATA, meta=1)
        trans = flash.program(PageKind.TRANSLATION, meta=2)
        assert flash.block_id_of(data) != flash.block_id_of(trans)
        assert flash.block_of(data).kind is BlockKind.DATA
        assert flash.block_of(trans).kind is BlockKind.TRANSLATION

    def test_program_counts_stats_by_kind(self, flash):
        flash.program(PageKind.DATA, meta=1)
        flash.program(PageKind.TRANSLATION, meta=2)
        flash.program(PageKind.DATA, meta=3)
        assert flash.stats.data_writes == 2
        assert flash.stats.translation_writes == 1

    def test_op_seq_monotonic(self, flash):
        flash.program(PageKind.DATA, meta=1)
        first = flash.op_seq
        flash.program(PageKind.DATA, meta=2)
        assert flash.op_seq == first + 1


class TestReads:
    def test_read_returns_meta_and_counts(self, flash):
        ppn = flash.program(PageKind.DATA, meta=77)
        assert flash.read(ppn, PageKind.DATA) == 77
        assert flash.stats.data_reads == 1

    def test_read_invalid_page_fails(self, flash):
        ppn = flash.program(PageKind.DATA, meta=1)
        flash.invalidate(ppn)
        with pytest.raises(FlashError):
            flash.read(ppn, PageKind.DATA)

    def test_read_free_page_fails(self, flash):
        with pytest.raises(FlashError):
            flash.read(0, PageKind.DATA)


class TestErase:
    def test_erase_returns_block_to_free_pool(self, flash):
        ppn = flash.program(PageKind.DATA, meta=1)
        block_id = flash.block_id_of(ppn)
        before = flash.free_block_count
        flash.invalidate(ppn)
        flash.erase(block_id)
        assert flash.free_block_count == before + 1
        assert flash.stats.erases[BlockKind.DATA] == 1

    def test_erase_free_block_fails(self, flash):
        with pytest.raises(FlashError):
            flash.erase(flash.blocks[-1].block_id)

    def test_erasing_active_block_clears_frontier(self, flash):
        ppn = flash.program(PageKind.DATA, meta=1)
        block_id = flash.block_id_of(ppn)
        flash.invalidate(ppn)
        flash.erase(block_id)
        assert flash.active_block(BlockKind.DATA) is None


class TestDedicatedAllocation:
    def test_allocate_block_does_not_move_frontier(self, flash):
        frontier_ppn = flash.program(PageKind.DATA, meta=1)
        block = flash.allocate_block(BlockKind.DATA)
        assert block.block_id != flash.block_id_of(frontier_ppn)
        next_ppn = flash.program(PageKind.DATA, meta=2)
        assert (flash.block_id_of(next_ppn)
                == flash.block_id_of(frontier_ppn))

    def test_program_into_specific_block(self, flash):
        block = flash.allocate_block(BlockKind.DATA)
        ppn = flash.program_into(block, PageKind.DATA, meta=5)
        assert flash.block_id_of(ppn) == block.block_id
        assert flash.read(ppn, PageKind.DATA) == 5

    def test_allocate_free_kind_rejected(self, flash):
        with pytest.raises(FlashError):
            flash.allocate_block(BlockKind.FREE)


class TestSpaceAccounting:
    def test_gc_needed_threshold(self, flash):
        threshold = (flash.config.gc_threshold_blocks
                     + flash.config.gc_reserve_blocks)
        assert not flash.gc_needed
        while flash.free_block_count > threshold:
            flash.allocate_block(BlockKind.DATA)
        assert flash.gc_needed

    def test_out_of_space_raises(self, flash):
        with pytest.raises(OutOfSpaceError):
            for _ in range(len(flash.blocks) + 1):
                flash.allocate_block(BlockKind.DATA)

    def test_total_erase_count(self, flash):
        ppn = flash.program(PageKind.DATA, meta=1)
        flash.invalidate(ppn)
        flash.erase(flash.block_id_of(ppn))
        assert flash.total_erase_count() == 1


class TestStatsSnapshotReset:
    def test_snapshot_is_independent(self, flash):
        flash.program(PageKind.DATA, meta=1)
        snap = flash.stats.snapshot()
        flash.program(PageKind.DATA, meta=2)
        assert snap.data_writes == 1
        assert flash.stats.data_writes == 2

    def test_reset_zeroes_counters(self, flash):
        flash.program(PageKind.DATA, meta=1)
        flash.stats.reset()
        assert flash.stats.total_writes == 0
        assert flash.stats.total_reads == 0
        assert flash.stats.total_erases == 0
