"""Unit tests for translation-page geometry and the GTD."""

import pytest

from repro.errors import TranslationError
from repro.ftl import GlobalTranslationDirectory, TranslationGeometry
from repro.types import UNMAPPED


class TestGeometry:
    @pytest.fixture
    def geo(self):
        return TranslationGeometry(logical_pages=300, entries_per_page=64)

    def test_translation_pages_rounds_up(self, geo):
        assert geo.translation_pages == 5

    def test_locate(self, geo):
        assert geo.locate(0) == (0, 0)
        assert geo.locate(63) == (0, 63)
        assert geo.locate(64) == (1, 0)
        assert geo.locate(299) == (4, 43)

    def test_vtpn_offset_consistent_with_locate(self, geo):
        for lpn in (0, 1, 63, 64, 150, 299):
            assert geo.locate(lpn) == (geo.vtpn_of(lpn),
                                       geo.offset_of(lpn))

    def test_first_last_lpn(self, geo):
        assert geo.first_lpn(1) == 64
        assert geo.last_lpn(1) == 127
        # last page is short (300 entries total)
        assert geo.last_lpn(4) == 299
        assert geo.entries_in(4) == 44

    def test_lpns_of_page(self, geo):
        lpns = list(geo.lpns_of(4))
        assert lpns[0] == 256
        assert lpns[-1] == 299

    def test_same_page(self, geo):
        assert geo.same_page(64, 127)
        assert not geo.same_page(63, 64)

    def test_out_of_range_rejected(self, geo):
        with pytest.raises(ValueError):
            geo.vtpn_of(300)
        with pytest.raises(ValueError):
            geo.offset_of(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TranslationGeometry(logical_pages=0, entries_per_page=64)
        with pytest.raises(ValueError):
            TranslationGeometry(logical_pages=10, entries_per_page=0)


class TestGTD:
    def test_lookup_after_update(self):
        gtd = GlobalTranslationDirectory(4)
        gtd.update(2, 99)
        assert gtd.lookup(2) == 99
        assert gtd.is_mapped(2)

    def test_unmapped_lookup_raises(self):
        gtd = GlobalTranslationDirectory(4)
        with pytest.raises(TranslationError):
            gtd.lookup(0)

    def test_get_returns_sentinel(self):
        gtd = GlobalTranslationDirectory(4)
        assert gtd.get(1) == UNMAPPED

    def test_update_returns_previous(self):
        gtd = GlobalTranslationDirectory(4)
        assert gtd.update(0, 5) == UNMAPPED
        assert gtd.update(0, 7) == 5

    def test_update_counter(self):
        gtd = GlobalTranslationDirectory(4)
        gtd.update(0, 1)
        gtd.update(1, 2)
        assert gtd.updates == 2

    def test_size_bytes(self):
        assert GlobalTranslationDirectory(16).size_bytes == 64

    def test_len(self):
        assert len(GlobalTranslationDirectory(7)) == 7

    def test_zero_pages_rejected(self):
        with pytest.raises(TranslationError):
            GlobalTranslationDirectory(0)
