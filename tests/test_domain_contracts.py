"""Address-domain contracts of ``lookup_current``/``cache_peek``.

The TP2xx domain pass pins these APIs to the LPN->PPN contract in its
signature map; these tests pin the *runtime* side of the same
contract across every demand-cached FTL:

* ``cache_peek(lpn)`` returns the cached PPN (or None) without
  touching recency or counting a lookup;
* ``lookup_current(lpn)`` prefers the cache over ``flash_table``
  (cache wins while an entry is dirty), and what it returns is always
  the *authoritative* PPN — the flash page it names is VALID and its
  metadata reads back as exactly ``lpn``;
* after ``flush()``, ``flash_table`` agrees with ``lookup_current``
  for every LPN, even after mixed read/write/GC histories.
"""

import pytest

from repro.ftl import CDFTL, DFTL, TPFTL
from repro.types import PageKind


@pytest.fixture(params=[DFTL, TPFTL, CDFTL],
                ids=["dftl", "tpftl", "cdftl"])
def ftl(request, roomy_config):
    return request.param(roomy_config)


def _hammer(ftl, rounds=30, span=16):
    """Overwrite a few LPNs until data GC must have run."""
    for _ in range(rounds):
        for lpn in range(span):
            ftl.write_page(lpn)
    assert ftl.metrics.gc_data_collections > 0


class TestCachePeek:
    def test_uncached_lpn_peeks_none(self, ftl):
        assert ftl.cache_peek(123) is None

    def test_peek_is_metrics_neutral(self, ftl):
        ftl.read_page(5)
        lookups = ftl.metrics.lookups
        hits = ftl.metrics.hits
        for _ in range(3):
            ftl.cache_peek(5)
            ftl.cache_peek(123)
        assert ftl.metrics.lookups == lookups
        assert ftl.metrics.hits == hits

    def test_peek_matches_recorded_mapping(self, ftl):
        ftl.write_page(7)
        ppn = ftl.cache_peek(7)
        assert ppn is not None
        assert ftl.flash.read(ppn, PageKind.DATA) == 7


class TestLookupCurrent:
    def test_cache_wins_over_stale_flash_table(self, ftl):
        """A write dirties the cached entry; until writeback the
        cache — not flash_table — holds the authoritative PPN."""
        ftl.write_page(9)
        cached = ftl.cache_peek(9)
        assert cached is not None
        assert ftl.lookup_current(9) == cached
        assert ftl.flash.read(cached, PageKind.DATA) == 9

    def test_reads_do_not_remap(self, ftl):
        ftl.write_page(11)
        before = ftl.lookup_current(11)
        ftl.read_page(11)
        assert ftl.lookup_current(11) == before

    def test_authoritative_after_mixed_history_with_gc(self, ftl):
        _hammer(ftl)
        for lpn in range(16):
            ftl.read_page(lpn)
        for lpn in range(16):
            ppn = ftl.lookup_current(lpn)
            assert ftl.flash.read(ppn, PageKind.DATA) == lpn
        ftl.check_consistency()


class TestFlashTableAfterFlush:
    def test_flush_syncs_flash_table(self, ftl):
        for lpn in (0, 1, 7):
            ftl.write_page(lpn)
        ftl.flush()
        for lpn in (0, 1, 7):
            assert ftl.flash_table[lpn] == ftl.lookup_current(lpn)

    def test_flush_after_gc_keeps_lpn_to_ppn_authoritative(self, ftl):
        _hammer(ftl)
        ftl.flush()
        for lpn in range(16):
            ppn = ftl.flash_table[lpn]
            assert ppn == ftl.lookup_current(lpn)
            assert ftl.flash.read(ppn, PageKind.DATA) == lpn
        ftl.check_consistency()
