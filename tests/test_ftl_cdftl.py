"""CDFTL behaviour: CMT + CTP tiers and the kick-out rules."""

import pytest

from repro.config import CacheConfig, SimulationConfig, SSDConfig
from repro.errors import CacheCapacityError
from repro.ftl import CDFTL


def make_cdftl(budget: int = 2048, logical_pages: int = 512) -> CDFTL:
    ssd = SSDConfig(logical_pages=logical_pages, page_size=256,
                    pages_per_block=8)
    config = SimulationConfig(
        ssd=ssd, cache=CacheConfig(budget_bytes=ssd.gtd_bytes + budget))
    return CDFTL(config)


class TestTiers:
    def test_miss_loads_page_into_ctp_and_entry_into_cmt(self):
        ftl = make_cdftl()
        ftl.read_page(10)
        assert ftl.metrics.trans_reads_load == 1
        assert 10 in ftl.cmt
        assert ftl.geometry.vtpn_of(10) in ftl.ctp

    def test_cmt_hit_needs_no_flash(self):
        ftl = make_cdftl()
        ftl.read_page(10)
        ftl.read_page(10)
        assert ftl.metrics.hits == 1
        assert ftl.metrics.trans_reads_load == 1

    def test_ctp_hit_promotes_without_flash_read(self):
        ftl = make_cdftl()
        ftl.read_page(10)     # loads page 0 into CTP
        ftl.read_page(20)     # same translation page: CTP hit
        assert ftl.metrics.hits == 1
        assert ftl.metrics.trans_reads_load == 1
        assert 20 in ftl.cmt

    def test_capacity_error_when_ctp_cannot_hold_one_page(self):
        ssd = SSDConfig(logical_pages=512, page_size=256,
                        pages_per_block=8)
        config = SimulationConfig(
            ssd=ssd, cache=CacheConfig(budget_bytes=ssd.gtd_bytes + 64))
        with pytest.raises(CacheCapacityError):
            CDFTL(config)


class TestCMTEviction:
    def fill_cmt(self, ftl, start=0):
        for i in range(ftl.cmt_capacity):
            ftl.read_page(start + i)

    def test_clean_entries_evicted_first(self):
        ftl = make_cdftl()
        self.fill_cmt(ftl)
        ftl.read_page(200)  # forces one CMT eviction, clean: free
        assert ftl.metrics.trans_writes_writeback == 0

    def test_dirty_entry_folds_into_ctp(self):
        ftl = make_cdftl()
        ftl.write_page(0)   # dirty in CMT; page 0 in CTP
        new_ppn = ftl.cache_peek(0)
        self.fill_cmt(ftl, start=1)
        ftl.read_page(60)   # eviction pressure
        # whether or not LPN 0 was the victim, no flash writeback needed
        page = ftl.ctp.get(ftl.geometry.vtpn_of(0), touch=False)
        if 0 not in ftl.cmt:
            assert page.overrides[0] == new_ppn

    def test_ctp_eviction_writes_back_dirty_page(self):
        ftl = make_cdftl()  # CTP capacity is small (page-sized slots)
        epp = ftl.geometry.entries_per_page
        ftl.write_page(0)
        # fold the dirty entry into the CTP page, then push it out
        for lpn in range(1, ftl.cmt_capacity + 1):
            ftl.read_page(lpn)
        new_ppn = ftl.cache_peek(0) or ftl.ctp.get(
            0, touch=False).overrides.get(0)
        for vtpn in range(1, ftl.ctp_capacity + 2):
            ftl.read_page(vtpn * epp)
        ftl.flush()
        ftl.check_consistency()


class TestGCHooks:
    def test_update_prefers_cmt(self):
        ftl = make_cdftl()
        ftl.read_page(5)
        assert ftl._cache_update_if_present(5, 777)
        assert ftl.cache_peek(5) == 777

    def test_update_falls_back_to_ctp(self):
        ftl = make_cdftl()
        ftl.read_page(5)
        ftl.cmt.remove(5)
        assert ftl._cache_update_if_present(6, 888)  # page 0 in CTP
        page = ftl.ctp.get(0, touch=False)
        assert page.overrides[6] == 888

    def test_update_misses_when_nowhere(self):
        ftl = make_cdftl()
        assert not ftl._cache_update_if_present(5, 1)


class TestEndToEnd:
    def test_mixed_workload_consistency(self):
        import random
        ftl = make_cdftl(budget=1024)
        rng = random.Random(11)
        for _ in range(400):
            lpn = rng.randrange(512)
            if rng.random() < 0.7:
                ftl.write_page(lpn)
            else:
                ftl.read_page(lpn)
        ftl.flush()
        ftl.check_consistency()
