"""The FTL factory and the public package surface."""

import pytest

import repro
from repro.errors import ExperimentError
from repro.ftl import (CDFTL, DFTL, FTL_NAMES, SFTL, TPFTL, BlockFTL,
                       HybridFTL, OptimalFTL, make_ftl)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("optimal", OptimalFTL),
        ("dftl", DFTL),
        ("tpftl", TPFTL),
        ("block", BlockFTL),
        ("hybrid", HybridFTL),
    ])
    def test_builds_named_ftl(self, tiny_config, name, cls):
        ftl = make_ftl(name, tiny_config)
        assert isinstance(ftl, cls)
        assert ftl.name == name

    def test_page_granular_ftls_need_roomier_cache(self, roomy_config):
        assert isinstance(make_ftl("sftl", roomy_config), SFTL)
        assert isinstance(make_ftl("cdftl", roomy_config), CDFTL)

    def test_case_insensitive(self, tiny_config):
        assert isinstance(make_ftl("TPFTL", tiny_config), TPFTL)

    def test_unknown_name_rejected(self, tiny_config):
        with pytest.raises(ExperimentError):
            make_ftl("nope", tiny_config)

    def test_registry_names_sorted_and_complete(self):
        assert FTL_NAMES == tuple(sorted(FTL_NAMES))
        assert set(FTL_NAMES) == {
            "optimal", "dftl", "tpftl", "sftl", "cdftl", "block",
            "hybrid", "zftl"}

    def test_tpftl_receives_technique_config(self, tiny_config):
        from dataclasses import replace
        from repro.config import TPFTLConfig
        config = replace(tiny_config,
                         tpftl=TPFTLConfig.from_monogram("bc"))
        ftl = make_ftl("tpftl", config)
        assert ftl.techniques.monogram == "bc"


class TestPublicAPI:
    def test_version_string(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_surface(self):
        # the objects the README quickstart uses
        assert repro.SimulationConfig
        assert repro.SSDConfig
        assert repro.make_ftl
        assert repro.simulate
