"""TPFTL behaviour: two-level lists, r/s/b/c techniques, §4.5 rules."""

from repro.config import (CacheConfig, SimulationConfig, SSDConfig,
                          TPFTLConfig)
from repro.ftl import TPFTL
from repro.types import Op, Request


def make_tpftl(monogram: str = "rsbc", entry_slots: int = 8,
               logical_pages: int = 512,
               selective_threshold: int = 3) -> TPFTL:
    """A TPFTL with room for roughly ``entry_slots`` entries."""
    ssd = SSDConfig(logical_pages=logical_pages, page_size=256,
                    pages_per_block=8)
    base = TPFTLConfig.from_monogram(monogram)
    tp_config = TPFTLConfig(
        request_prefetch=base.request_prefetch,
        selective_prefetch=base.selective_prefetch,
        batch_update=base.batch_update,
        clean_first=base.clean_first,
        selective_threshold=selective_threshold,
    )
    # budget: GTD + slots * (entry + half a node of slack)
    budget = ssd.gtd_bytes + entry_slots * 6 + (entry_slots // 2) * 8
    config = SimulationConfig(ssd=ssd,
                              cache=CacheConfig(budget_bytes=budget),
                              tpftl=tp_config)
    return TPFTL(config)


class TestTwoLevelStructure:
    def test_entries_cluster_by_translation_page(self):
        ftl = make_tpftl("-")
        epp = ftl.geometry.entries_per_page
        ftl.read_page(0)
        ftl.read_page(1)
        ftl.read_page(epp)
        assert ftl.cached_node_count == 2
        assert ftl.cached_entry_count == 3
        snapshot = sorted(ftl.cache_snapshot())
        assert snapshot == [(1, 0), (2, 0)]

    def test_hit_and_miss_accounting(self):
        ftl = make_tpftl("-")
        ftl.read_page(5)
        ftl.read_page(5)
        assert ftl.metrics.lookups == 2
        assert ftl.metrics.hits == 1
        assert ftl.metrics.trans_reads_load == 1

    def test_invariants_after_mixed_ops(self):
        ftl = make_tpftl("rsbc", entry_slots=12)
        for lpn in (0, 1, 64, 65, 3, 128, 0, 200, 64):
            ftl.write_page(lpn)
            ftl.assert_invariants()
        for lpn in (5, 70, 130, 0):
            ftl.read_page(lpn)
            ftl.assert_invariants()

    def test_empty_nodes_removed(self):
        ftl = make_tpftl("-", entry_slots=2)
        ftl.read_page(0)
        ftl.read_page(100)
        ftl.read_page(200)  # evictions drain the oldest node
        ftl.assert_invariants()
        for node in ftl.by_vtpn.values():
            assert len(node) > 0


class TestPageLevelHotness:
    def test_node_with_recent_entry_is_hotter(self):
        ftl = make_tpftl("-", entry_slots=8)
        ftl.read_page(0)     # node A
        ftl.read_page(64)    # node B more recent
        hot = ftl.page_list.mru
        assert hot.vtpn == ftl.geometry.vtpn_of(64)

    def test_cold_entries_drag_node_down(self):
        """A node holding the MRU entry can still rank colder on average
        (§4.2): many cold entries outweigh one hot one."""
        ftl = make_tpftl("-", entry_slots=12)
        epp = ftl.geometry.entries_per_page
        # node A: three old entries
        for lpn in (0, 1, 2):
            ftl.read_page(lpn)
        # node B: three fresh entries
        for lpn in (epp, epp + 1, epp + 2):
            ftl.read_page(epp)
        # touch one entry of A: A's mean stays below B's
        ftl.read_page(0)
        assert ftl.page_list.mru.vtpn == ftl.geometry.vtpn_of(epp)
        ftl.assert_invariants()

    def test_eviction_comes_from_coldest_node(self):
        # budget fits two singleton nodes (14B each), not three
        ftl = make_tpftl("-", entry_slots=4)
        ftl.read_page(0)      # node A (older)
        ftl.read_page(64)     # node B
        ftl.read_page(128)    # must evict from A, the coldest
        assert ftl.cache_peek(0) is None
        assert ftl.cache_peek(64) is not None


class TestCleanFirst:
    def test_clean_evicted_before_dirty(self):
        ftl = make_tpftl("c", entry_slots=2)
        ftl.write_page(0)    # dirty, and LRU within its node
        ftl.read_page(1)     # clean, MRU
        before = ftl.metrics.translation_page_writes
        ftl.read_page(2)     # eviction: clean-first picks LPN 1
        assert ftl.cache_peek(1) is None
        assert ftl.cache_peek(0) is not None
        assert ftl.metrics.translation_page_writes == before
        assert ftl.metrics.dirty_replacements == 0

    def test_without_clean_first_lru_entry_evicted(self):
        ftl = make_tpftl("-", entry_slots=2)
        ftl.write_page(0)    # dirty, LRU
        ftl.read_page(1)     # clean, MRU
        ftl.read_page(2)     # eviction: plain LRU picks dirty LPN 0
        assert ftl.cache_peek(0) is None
        assert ftl.metrics.dirty_replacements == 1

    def test_all_dirty_falls_back_to_lru_dirty(self):
        ftl = make_tpftl("c", entry_slots=2)
        ftl.write_page(0)
        ftl.write_page(1)
        ftl.read_page(2)
        assert ftl.metrics.dirty_replacements == 1
        assert ftl.cache_peek(0) is None


class TestBatchUpdate:
    def test_batch_writes_all_dirty_of_node_in_one_update(self):
        ftl = make_tpftl("b", entry_slots=3)
        for lpn in (0, 1, 2):
            ftl.write_page(lpn)  # three dirty entries, same node
        before_writes = ftl.metrics.trans_writes_writeback
        ftl.read_page(100)       # evict one dirty entry
        assert ftl.metrics.trans_writes_writeback == before_writes + 1
        assert ftl.metrics.batch_cleaned_entries == 2
        # survivors are now clean: the next eviction costs nothing
        before_writes = ftl.metrics.trans_writes_writeback
        ftl.read_page(101)
        assert ftl.metrics.trans_writes_writeback == before_writes

    def test_batch_update_persists_all_values(self):
        ftl = make_tpftl("b", entry_slots=3)
        for lpn in (0, 1, 2):
            ftl.write_page(lpn)
        expected = {lpn: ftl.cache_peek(lpn) for lpn in (0, 1, 2)}
        ftl.read_page(100)  # triggers the batch writeback
        for lpn, ppn in expected.items():
            assert ftl.flash_table[lpn] == ppn

    def test_without_batch_each_dirty_eviction_writes(self):
        ftl = make_tpftl("-", entry_slots=3)
        for lpn in (0, 1, 2):
            ftl.write_page(lpn)
        before = ftl.metrics.trans_writes_writeback
        ftl.read_page(100)
        ftl.read_page(101)
        ftl.read_page(102)
        assert ftl.metrics.trans_writes_writeback - before == 3

    def test_gc_piggyback_cleans_cached_dirty_entries(self):
        ftl = make_tpftl("b", entry_slots=6)
        ftl.write_page(0)
        vtpn = ftl.geometry.vtpn_of(0)
        extras = ftl._gc_flush_extras(vtpn)
        assert 0 in extras
        assert ftl.by_vtpn[vtpn].dirty_count == 0

    def test_no_piggyback_without_b(self):
        ftl = make_tpftl("-", entry_slots=6)
        ftl.write_page(0)
        assert ftl._gc_flush_extras(ftl.geometry.vtpn_of(0)) == {}


class TestRequestPrefetch:
    def test_whole_request_loaded_with_one_read(self):
        ftl = make_tpftl("r", entry_slots=8)
        request = Request(arrival=0.0, op=Op.READ, lpn=8, npages=4)
        result = ftl.serve_request(request)
        # one miss (the first page), then hits for the prefetched rest
        assert ftl.metrics.trans_reads_load == 1
        assert ftl.metrics.hits == 3
        assert result.translation_reads == 1
        assert ftl.metrics.prefetched_entries == 3

    def test_prefetch_clipped_at_page_boundary(self):
        ftl = make_tpftl("r", entry_slots=16)
        epp = ftl.geometry.entries_per_page
        request = Request(arrival=0.0, op=Op.READ, lpn=epp - 2, npages=4)
        ftl.serve_request(request)
        # pages epp-2, epp-1 from page 0; epp, epp+1 need page 1
        assert ftl.metrics.trans_reads_load == 2

    def test_without_r_each_page_misses(self):
        ftl = make_tpftl("-", entry_slots=8)
        request = Request(arrival=0.0, op=Op.READ, lpn=8, npages=4)
        ftl.serve_request(request)
        assert ftl.metrics.trans_reads_load == 4
        assert ftl.metrics.hits == 0

    def test_prefetch_hits_tracked(self):
        ftl = make_tpftl("r", entry_slots=8)
        ftl.serve_request(Request(arrival=0.0, op=Op.READ, lpn=8,
                                  npages=3))
        assert ftl.metrics.prefetch_hits == 2


class TestSelectivePrefetch:
    def test_counter_activates_after_sequential_burst(self):
        """§4.3: a sequential burst concentrates entries on one node and
        drains dispersed singleton nodes, driving the counter negative
        until selective prefetching turns on."""
        ftl = make_tpftl("s", entry_slots=12, selective_threshold=3)
        assert not ftl.selective_active
        # random phase: dispersed singleton nodes fill the cache
        for lpn in (64, 128, 192, 256, 320, 384, 448, 100):
            ftl.read_page(lpn)
        # sequential burst within one translation page drains them
        for lpn in range(0, 20):
            ftl.read_page(lpn)
        assert ftl.selective_active

    def test_selective_prefetches_successors_of_cached_run(self):
        # huge threshold: the counter never toggles the manual setting
        ftl = make_tpftl("s", entry_slots=16, selective_threshold=100)
        ftl.selective_active = True
        ftl.read_page(10)   # no predecessor: nothing prefetched
        assert ftl.metrics.prefetched_entries == 0
        ftl.read_page(11)   # one predecessor (10): prefetches 12
        assert ftl.metrics.prefetched_entries == 1
        assert ftl.cache_peek(12) is not None
        ftl.read_page(12)   # prefetch pays off as a hit
        assert ftl.metrics.prefetch_hits == 1
        before = ftl.metrics.prefetched_entries
        ftl.read_page(13)   # three predecessors: prefetches 14, 15, 16
        assert ftl.metrics.prefetched_entries - before == 3
        for lpn in (14, 15, 16):
            assert ftl.cache_peek(lpn) is not None

    def test_no_predecessors_no_prefetch(self):
        ftl = make_tpftl("s", entry_slots=16, selective_threshold=100)
        ftl.selective_active = True
        ftl.read_page(40)
        assert ftl.metrics.prefetched_entries == 0

    def test_inactive_selective_does_not_prefetch(self):
        ftl = make_tpftl("s", entry_slots=16, selective_threshold=3)
        ftl.read_page(10)
        ftl.read_page(11)
        assert not ftl.selective_active
        ftl.read_page(12)
        assert ftl.metrics.prefetched_entries == 0


class TestIntegrationRules:
    def test_read_translation_cost_bounded(self):
        """§4.5: each address translation costs at most one page read
        for loading plus one read-modify-write for a writeback."""
        ftl = make_tpftl("rsbc", entry_slots=6)
        for lpn in (0, 1, 64, 65, 128, 129, 192, 3, 66, 130):
            result = ftl.read_page(lpn)
            assert result.translation_reads <= 2
            assert result.translation_writes <= 1

    def test_demanded_entry_survives_prefetch_evictions(self):
        ftl = make_tpftl("rs", entry_slots=2, selective_threshold=100)
        ftl.selective_active = True
        request = Request(arrival=0.0, op=Op.WRITE, lpn=8, npages=2)
        ftl.serve_request(request)  # must not evict LPN 8 mid-request
        ftl.assert_invariants()


class TestCompression:
    def test_tpftl_fits_more_entries_than_dftl_budget(self):
        """6B entries beat 8B entries once entries share nodes."""
        ftl = make_tpftl("-", entry_slots=12)
        budget = ftl.budget.capacity
        # fill with entries from one translation page: one node header
        filled = 0
        lpn = 0
        while True:
            before = ftl.cached_entry_count
            ftl.read_page(lpn)
            if ftl.cached_entry_count <= before:
                break
            filled = ftl.cached_entry_count
            lpn += 1
            if lpn >= 64:
                break
        dftl_equivalent = budget // 8
        assert filled > dftl_equivalent
