"""Property-based tests: every FTL is a correct block device under
arbitrary operation sequences, and TPFTL's structural invariants hold."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import (CacheConfig, SimulationConfig, SSDConfig,
                          TPFTLConfig)
from repro.ftl import make_ftl

PAGES = 256

ops = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0,
                                         max_value=PAGES - 1)),
    min_size=1, max_size=120)

monograms = st.sampled_from(["-", "b", "c", "bc", "r", "s", "rs",
                             "rsbc"])


def build(name: str, monogram: str = "rsbc"):
    ssd = SSDConfig(logical_pages=PAGES, page_size=256,
                    pages_per_block=8)
    cache = (CacheConfig(budget_bytes=1536)
             if name in ("sftl", "cdftl") else None)
    config = SimulationConfig(
        ssd=ssd, cache=cache,
        tpftl=TPFTLConfig.from_monogram(monogram))
    return make_ftl(name, config)


@pytest.mark.parametrize("name", ["dftl", "sftl", "cdftl", "optimal"])
@given(sequence=ops)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_ftl_serves_any_sequence_consistently(name, sequence):
    ftl = build(name)
    for is_write, lpn in sequence:
        if is_write:
            ftl.write_page(lpn)
        else:
            ftl.read_page(lpn)
    ftl.flush()
    ftl.check_consistency()


@given(sequence=ops, monogram=monograms)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_tpftl_invariants_under_any_sequence(sequence, monogram):
    ftl = build("tpftl", monogram)
    for is_write, lpn in sequence:
        if is_write:
            ftl.write_page(lpn)
        else:
            ftl.read_page(lpn)
        ftl.assert_invariants()
    ftl.flush()
    ftl.check_consistency()
    ftl.assert_invariants()


@given(sequence=ops)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_all_ftls_agree_on_final_content_identity(sequence):
    """Whatever the FTL, a read of LPN x lands on a flash page whose
    out-of-band identity is x — across the whole logical space."""
    ftls = [build(name) for name in ("dftl", "tpftl", "optimal")]
    for is_write, lpn in sequence:
        for ftl in ftls:
            if is_write:
                ftl.write_page(lpn)
            else:
                ftl.read_page(lpn)
    from repro.types import PageKind
    for ftl in ftls:
        for lpn in range(0, PAGES, 13):
            ppn = ftl.lookup_current(lpn)
            assert ftl.flash.read(ppn, PageKind.DATA) == lpn


@given(sequence=ops)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_metrics_never_go_inconsistent(sequence):
    """Derived ratios stay in range whatever happens."""
    ftl = build("tpftl")
    for is_write, lpn in sequence:
        if is_write:
            ftl.write_page(lpn)
        else:
            ftl.read_page(lpn)
        m = ftl.metrics
        assert 0.0 <= m.hit_ratio <= 1.0
        assert 0.0 <= m.p_replace_dirty <= 1.0
        assert m.hits <= m.lookups
        assert m.dirty_replacements <= m.replacements
        assert m.write_amplification >= 1.0


trim_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),
              st.integers(min_value=0, max_value=PAGES - 1)),
    min_size=1, max_size=100)


@given(sequence=trim_ops)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_tpftl_with_trims_stays_recoverable(sequence):
    """Reads, writes and trims in any order: invariants hold and a
    flash scan reconstructs exactly the live mapping."""
    from repro.recovery import verify_recovery
    ftl = build("tpftl")
    for kind, lpn in sequence:
        if kind == 0:
            ftl.read_page(lpn)
        elif kind == 1:
            ftl.write_page(lpn)
        else:
            from repro.types import Op, Request
            ftl.serve_request(Request(arrival=0.0, op=Op.TRIM,
                                      lpn=lpn, npages=1))
        ftl.assert_invariants()
    ftl.flush()
    ftl.check_consistency()
    verify_recovery(ftl)


@given(sequence=trim_ops)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_dftl_trim_flush_persists_unmappings(sequence):
    """After a flush, the on-flash table agrees with the live view for
    every LPN, trimmed ones included."""
    from repro.types import Op, Request, UNMAPPED
    ftl = build("dftl")
    trimmed = set()
    for kind, lpn in sequence:
        if kind == 0:
            ftl.read_page(lpn)
        elif kind == 1:
            ftl.write_page(lpn)
            trimmed.discard(lpn)
        else:
            ftl.serve_request(Request(arrival=0.0, op=Op.TRIM,
                                      lpn=lpn, npages=1))
            trimmed.add(lpn)
    ftl.flush()
    for lpn in trimmed:
        assert ftl.flash_table[lpn] == UNMAPPED
    for lpn in range(PAGES):
        assert ftl.lookup_current(lpn) == ftl.flash_table[lpn]
