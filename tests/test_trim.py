"""TRIM/discard support (extension): unmap, GC benefit, recovery."""

import pytest

from repro.errors import FTLError
from repro.ftl import make_ftl
from repro.recovery import verify_recovery
from repro.types import Op, Request, UNMAPPED

from test_integration import DEMAND_FTLS, config_for

PAGE_LEVEL = DEMAND_FTLS + ("optimal",)


def trim(ftl, lpn, npages=1):
    return ftl.serve_request(Request(arrival=0.0, op=Op.TRIM, lpn=lpn,
                                     npages=npages))


class TestTrimSemantics:
    @pytest.mark.parametrize("name", PAGE_LEVEL)
    def test_trim_unmaps(self, name):
        ftl = make_ftl(name, config_for(name))
        trim(ftl, 5)
        assert ftl.lookup_current(5) == UNMAPPED
        assert ftl.metrics.user_page_trims == 1

    @pytest.mark.parametrize("name", PAGE_LEVEL)
    def test_trim_invalidates_flash_page(self, name):
        ftl = make_ftl(name, config_for(name))
        old_ppn = ftl.flash_table[5]
        trim(ftl, 5)
        block = ftl.flash.block_of(old_ppn)
        assert block.meta(ftl.flash.offset_of(old_ppn)) is None

    @pytest.mark.parametrize("name", PAGE_LEVEL)
    def test_read_after_trim_served_as_zeroes(self, name):
        ftl = make_ftl(name, config_for(name))
        trim(ftl, 5)
        reads_before = ftl.flash.stats.data_reads
        result = ftl.read_page(5)
        assert result.data_reads == 0
        assert ftl.flash.stats.data_reads == reads_before
        assert ftl.metrics.unmapped_reads == 1

    @pytest.mark.parametrize("name", PAGE_LEVEL)
    def test_write_after_trim_remaps(self, name):
        ftl = make_ftl(name, config_for(name))
        trim(ftl, 5)
        ftl.write_page(5)
        assert ftl.lookup_current(5) != UNMAPPED
        ftl.read_page(5)  # readable again

    def test_double_trim_is_idempotent(self, tiny_config):
        ftl = make_ftl("tpftl", tiny_config)
        trim(ftl, 5)
        trim(ftl, 5)
        assert ftl.metrics.user_page_trims == 2
        assert ftl.lookup_current(5) == UNMAPPED

    def test_range_trim(self, tiny_config):
        ftl = make_ftl("dftl", tiny_config)
        trim(ftl, 8, npages=4)
        for lpn in range(8, 12):
            assert ftl.lookup_current(lpn) == UNMAPPED


class TestTrimPersistence:
    def test_trim_survives_writeback(self, tiny_config):
        """A trimmed entry evicted from the cache persists UNMAPPED."""
        ftl = make_ftl("dftl", tiny_config)
        trim(ftl, 5)
        ftl.flush()
        assert ftl.flash_table[5] == UNMAPPED

    @pytest.mark.parametrize("name", PAGE_LEVEL)
    def test_recovery_agrees_after_trims(self, name):
        import random
        ftl = make_ftl(name, config_for(name))
        rng = random.Random(15)
        for _ in range(400):
            lpn = rng.randrange(512)
            roll = rng.random()
            if roll < 0.5:
                ftl.write_page(lpn)
            elif roll < 0.7:
                trim(ftl, lpn)
            else:
                ftl.read_page(lpn)
        ftl.flush()
        ftl.check_consistency()
        verify_recovery(ftl)


class TestTrimHelpsGC:
    def test_trimmed_space_reduces_migrations(self, tiny_config):
        """Trimming cold data before overwriting cuts GC work."""
        import random
        rng = random.Random(8)
        writes = [rng.randrange(256) for _ in range(2000)]

        plain = make_ftl("optimal", tiny_config)
        for lpn in writes:
            plain.write_page(lpn)

        trimming = make_ftl("optimal", tiny_config)
        for lpn in range(256, 512):
            trim(trimming, lpn)  # discard the cold half
        for lpn in writes:
            trimming.write_page(lpn)

        assert (trimming.metrics.data_writes_migration
                < plain.metrics.data_writes_migration)


class TestCoarseFTLsRejectTrim:
    @pytest.mark.parametrize("name", ["block", "hybrid"])
    def test_trim_rejected(self, name):
        ftl = make_ftl(name, config_for(name))
        with pytest.raises(FTLError):
            trim(ftl, 0)


class TestTrimWorkloads:
    def test_generator_emits_trims(self):
        from repro.workloads import SyntheticSpec, characterize, generate
        spec = SyntheticSpec(name="t", logical_pages=2048,
                             num_requests=3000, write_ratio=0.5,
                             trim_fraction=0.2, seed=3)
        trace = generate(spec)
        stats = characterize(trace)
        assert stats.trim_ratio == pytest.approx(0.2, abs=0.03)

    def test_trim_trace_replays_end_to_end(self, tiny_config):
        from repro.ssd import simulate
        from repro.workloads import SyntheticSpec, generate
        spec = SyntheticSpec(name="t", logical_pages=512,
                             num_requests=1500, write_ratio=0.6,
                             trim_fraction=0.15, seed=4)
        ftl = make_ftl("tpftl", tiny_config)
        result = simulate(ftl, generate(spec))
        assert result.metrics.user_page_trims > 0
        ftl.flush()
        ftl.check_consistency()

    def test_writers_reject_trims(self):
        from repro.errors import WorkloadError
        from repro.types import Trace
        from repro.workloads import spc_lines, msr_lines
        trace = Trace(requests=[
            Request(arrival=0.0, op=Op.TRIM, lpn=0, npages=1)],
            logical_pages=16)
        with pytest.raises(WorkloadError):
            list(spc_lines(trace))
        with pytest.raises(WorkloadError):
            list(msr_lines(trace))

    def test_trim_only_trace_stats(self):
        from repro.workloads import characterize
        from repro.types import Trace
        trace = Trace(requests=[
            Request(arrival=0.0, op=Op.TRIM, lpn=0, npages=4)],
            logical_pages=16)
        stats = characterize(trace)
        assert stats.trim_ratio == 1.0
        assert stats.write_ratio == 0.0
        assert stats.pages_read == 0
