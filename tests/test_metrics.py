"""The metrics layer: counters, response stats, sampler, reports."""

import pytest

from repro.errors import MetricsError
from repro.metrics import (CacheSampler, FTLMetrics, ResponseStats,
                           format_table)
from repro.metrics.report import format_percent
from repro.types import RequestTiming


class TestFTLMetrics:
    def test_hit_ratio(self):
        m = FTLMetrics(lookups=10, hits=7)
        assert m.hit_ratio == pytest.approx(0.7)

    def test_hit_ratio_no_lookups_is_one(self):
        assert FTLMetrics().hit_ratio == 1.0

    def test_p_replace_dirty(self):
        m = FTLMetrics(replacements=8, dirty_replacements=2)
        assert m.p_replace_dirty == pytest.approx(0.25)

    def test_p_replace_dirty_no_replacements_is_zero(self):
        assert FTLMetrics().p_replace_dirty == 0.0

    def test_translation_totals(self):
        m = FTLMetrics(trans_reads_load=1, trans_reads_writeback=2,
                       trans_reads_gc=3, trans_reads_migration=4,
                       trans_writes_writeback=5,
                       trans_writes_gc_update=6,
                       trans_writes_migration=7)
        assert m.translation_page_reads == 10
        assert m.translation_page_writes == 18

    def test_write_amplification_definition(self):
        """Eq. 12: (user + Ntw + Ndt + Nmt + Nmd) / user."""
        m = FTLMetrics(user_page_writes=100, trans_writes_writeback=10,
                       trans_writes_gc_update=5,
                       trans_writes_migration=5,
                       data_writes_migration=30)
        assert m.write_amplification == pytest.approx(1.5)

    def test_write_amplification_read_only(self):
        assert FTLMetrics(user_page_reads=10).write_amplification == 1.0

    def test_gc_means(self):
        m = FTLMetrics(gc_data_collections=4, gc_data_valid_migrated=20,
                       gc_translation_collections=2,
                       gc_trans_valid_migrated=5)
        assert m.mean_valid_in_data_victims == 5.0
        assert m.mean_valid_in_trans_victims == 2.5

    def test_write_ratio(self):
        m = FTLMetrics(user_page_reads=3, user_page_writes=7)
        assert m.write_ratio == pytest.approx(0.7)

    def test_summary_keys(self):
        summary = FTLMetrics().summary()
        for key in ("hit_ratio", "p_replace_dirty",
                    "write_amplification", "erases"):
            assert key in summary


class TestResponseStats:
    def record(self, stats, values):
        for value in values:
            stats.record(RequestTiming(arrival=0.0, start=0.0,
                                       finish=value))

    def test_streaming_mean(self):
        stats = ResponseStats()
        self.record(stats, [10.0, 20.0, 30.0])
        assert stats.mean == pytest.approx(20.0)
        assert stats.max == 30.0
        assert stats.count == 3

    def test_variance_and_stddev(self):
        stats = ResponseStats()
        self.record(stats, [10.0, 20.0, 30.0])
        assert stats.variance == pytest.approx(100.0)
        assert stats.stddev == pytest.approx(10.0)

    def test_queue_delay_tracked(self):
        stats = ResponseStats()
        stats.record(RequestTiming(arrival=0.0, start=5.0, finish=10.0))
        stats.record(RequestTiming(arrival=0.0, start=15.0,
                                   finish=20.0))
        assert stats.mean_queue_delay == pytest.approx(10.0)

    def test_service_time_tracked(self):
        stats = ResponseStats()
        stats.record(RequestTiming(arrival=0.0, start=5.0, finish=10.0))
        stats.record(RequestTiming(arrival=0.0, start=15.0,
                                   finish=30.0))
        assert stats.total_service_time == pytest.approx(20.0)
        assert stats.mean_service_time == pytest.approx(10.0)
        # queue delay + in-service time decompose the response time
        assert (stats.mean_queue_delay + stats.mean_service_time
                == pytest.approx(stats.mean))

    def test_percentile_requires_samples(self):
        stats = ResponseStats()
        self.record(stats, [1.0])
        with pytest.raises(MetricsError):  # keep_samples off: loud, not None
            stats.percentile(50)

    def test_percentile_empty_but_enabled_is_none(self):
        stats = ResponseStats(keep_samples=True)
        assert stats.percentile(50) is None  # sampled, zero requests

    def test_percentile_nearest_rank(self):
        stats = ResponseStats(keep_samples=True)
        self.record(stats, [float(i) for i in range(1, 101)])
        assert stats.percentile(50) == 50.0
        assert stats.percentile(99) == 99.0
        assert stats.percentile(100) == 100.0

    def test_percentile_sorted_cache_invalidated_by_new_samples(self):
        stats = ResponseStats(keep_samples=True)
        self.record(stats, [5.0, 1.0, 3.0])
        assert stats.percentile(100) == 5.0
        self.record(stats, [9.0])  # must invalidate the cached order
        assert stats.percentile(100) == 9.0
        assert stats.percentile(1) == 1.0

    def test_percentile_bounds(self):
        stats = ResponseStats(keep_samples=True)
        self.record(stats, [1.0])
        with pytest.raises(ValueError):
            stats.percentile(101)

    def test_invalidate_covers_same_length_replacement(self):
        """A length-equality heuristic would serve stale percentiles.

        Replacing ``samples`` with a same-length list (as codecs do
        when rebuilding stats) must not reuse the cached sort once the
        caller declares the mutation via :meth:`invalidate`.
        """
        stats = ResponseStats(keep_samples=True)
        self.record(stats, [1.0, 2.0, 3.0])
        assert stats.percentile(100) == 3.0  # populate the cache
        stats.samples = [7.0, 8.0, 9.0]      # same length, new values
        stats.invalidate()
        assert stats.percentile(100) == 9.0
        assert stats.percentile(1) == 7.0


class TestResponseStatsMerge:
    def fill(self, stats, timings):
        for arrival, start, finish in timings:
            stats.record(RequestTiming(arrival=arrival, start=start,
                                       finish=finish))

    def split_vs_whole(self, keep_samples=True):
        timings = [(float(i), float(i) + i % 7, float(i) + 10 + 3 * i)
                   for i in range(40)]
        whole = ResponseStats(keep_samples=keep_samples)
        self.fill(whole, timings)
        parts = [ResponseStats(keep_samples=keep_samples)
                 for _ in range(3)]
        for index, timing in enumerate(timings):
            self.fill(parts[index % 3], [timing])
        merged = ResponseStats(keep_samples=keep_samples)
        for part in parts:
            merged.merge(part)
        return merged, whole

    def test_merge_reproduces_single_stream_moments(self):
        merged, whole = self.split_vs_whole()
        assert merged.count == whole.count
        assert merged.max == whole.max
        assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
        assert merged.variance == pytest.approx(whole.variance,
                                                rel=1e-9)
        assert merged.total_queue_delay == pytest.approx(
            whole.total_queue_delay)
        assert merged.total_service_time == pytest.approx(
            whole.total_service_time)
        assert sorted(merged.samples) == sorted(whole.samples)
        assert merged.percentile(99) == whole.percentile(99)

    def test_merge_empty_sides(self):
        merged, whole = self.split_vs_whole()
        before = (merged.count, merged.mean, merged.max)
        merged.merge(ResponseStats(keep_samples=True))  # no-op
        assert (merged.count, merged.mean, merged.max) == before
        fresh = ResponseStats(keep_samples=True)
        fresh.merge(whole)  # full copy
        assert fresh.count == whole.count
        assert fresh.mean == whole.mean
        assert fresh.samples == whole.samples
        assert fresh.samples is not whole.samples  # defensive copy

    def test_merge_invalidates_percentile_cache(self):
        stats = ResponseStats(keep_samples=True)
        self.fill(stats, [(0.0, 0.0, 5.0)])
        assert stats.percentile(100) == 5.0  # populate the cache
        other = ResponseStats(keep_samples=True)
        self.fill(other, [(0.0, 0.0, 50.0)])
        stats.merge(other)
        assert stats.percentile(100) == 50.0

    def test_merge_mixed_sampling_fails_loudly(self):
        """Sampled + unsampled merge must not report subset percentiles."""
        sampled = ResponseStats(keep_samples=True)
        self.fill(sampled, [(0.0, 0.0, 5.0)])
        unsampled = ResponseStats()
        self.fill(unsampled, [(0.0, 0.0, 9.0)])
        sampled.merge(unsampled)
        assert sampled.count == 2
        assert sampled.max == 9.0
        assert not sampled.keep_samples
        with pytest.raises(MetricsError):
            sampled.percentile(99)


class TestCacheSampler:
    def test_interval_gating(self):
        sampler = CacheSampler(interval=10)
        assert not sampler.maybe_sample(5, [(1, 0)])
        assert sampler.maybe_sample(10, [(1, 0)])
        assert not sampler.maybe_sample(11, [(1, 0)])
        assert sampler.maybe_sample(20, [(2, 1)])
        assert len(sampler.samples) == 2

    def test_disabled_sampler(self):
        sampler = CacheSampler(interval=0)
        assert not sampler.enabled
        assert not sampler.maybe_sample(100, [(1, 0)])

    def test_sample_aggregates(self):
        sampler = CacheSampler(interval=1)
        sampler.record(1, [(10, 2), (6, 0), (4, 4)])
        sample = sampler.samples[0]
        assert sample.cached_pages == 3
        assert sample.cached_entries == 20
        assert sample.dirty_entries == 6
        assert sample.mean_entries_per_page == pytest.approx(20 / 3)

    def test_dirty_cdf(self):
        sampler = CacheSampler(interval=1)
        sampler.record(1, [(5, 0), (5, 1), (5, 1), (5, 3)])
        cdf = dict(sampler.dirty_cdf())
        assert cdf[0] == pytest.approx(0.25)
        assert cdf[1] == pytest.approx(0.75)
        assert cdf[3] == pytest.approx(1.0)

    def test_fraction_pages_with_dirty_above(self):
        sampler = CacheSampler(interval=1)
        sampler.record(1, [(5, 0), (5, 1), (5, 2), (5, 5)])
        assert sampler.fraction_pages_with_dirty_above(1) == \
            pytest.approx(0.5)

    def test_mean_dirty_per_page(self):
        sampler = CacheSampler(interval=1)
        sampler.record(1, [(5, 2), (5, 4)])
        assert sampler.mean_dirty_per_page() == pytest.approx(3.0)

    def test_series_extraction(self):
        sampler = CacheSampler(interval=1)
        sampler.record(100, [(4, 1)])
        sampler.record(200, [(4, 1), (2, 0)])
        assert sampler.cached_pages_series() == [(100, 1), (200, 2)]
        entries = sampler.entries_per_page_series()
        assert entries[0] == (100, 4.0)
        assert entries[1] == (200, 3.0)


class TestReport:
    def test_aligned_table(self):
        text = format_table(["A", "Metric"], [["x", 1.5], ["yy", 2.25]],
                            precision=2, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.50" in text
        assert "2.25" in text

    def test_none_renders_dash(self):
        text = format_table(["A"], [[None]])
        assert "-" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["A", "B"], [["only-one"]])

    def test_format_percent(self):
        assert format_percent(0.235) == "23.5%"
        assert format_percent(0.2355, precision=2) == "23.55%"


class TestSparkline:
    def test_empty(self):
        from repro.metrics import sparkline
        assert sparkline([]) == ""

    def test_flat_series_mid_height(self):
        from repro.metrics import sparkline
        line = sparkline([5, 5, 5])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_monotone_series_rises(self):
        from repro.metrics import sparkline
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_downsampling_width(self):
        from repro.metrics import sparkline
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_pinned_scale(self):
        from repro.metrics import sparkline
        line = sparkline([5.0], lo=0.0, hi=10.0)
        assert line in ("▄", "▅")  # mid-height either side of rounding

    def test_labelled(self):
        from repro.metrics import labelled_sparkline
        text = labelled_sparkline("x", [1.0, 2.0])
        assert text.startswith("x: ")
        assert "[1..2]" in text

    def test_labelled_empty(self):
        from repro.metrics import labelled_sparkline
        assert "(no data)" in labelled_sparkline("x", [])
