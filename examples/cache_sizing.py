#!/usr/bin/env python3
"""How much mapping cache does TPFTL actually need?

A miniature of the paper's Fig 8(c)/9: sweep the cache from 1/128 of
the full mapping table (the paper's default) up to the whole table and
watch hit ratio, Prd, response time and write amplification converge to
the optimal FTL.  Useful when provisioning controller RAM.

Run:  python examples/cache_sizing.py [--workload msr-ts]
"""

import argparse

from repro import CacheConfig, SimulationConfig, SSDConfig, make_ftl, \
    simulate
from repro.metrics import format_table
from repro.workloads import PRESET_NAMES, make_preset

FRACTIONS = (1 / 128, 1 / 64, 1 / 32, 1 / 16, 1 / 8, 1 / 4, 1 / 2, 1.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", choices=PRESET_NAMES,
                        default="financial1")
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--warmup", type=int, default=5_000)
    args = parser.parse_args()

    pages = 65_536 if args.workload.startswith("msr") else 16_384
    trace = make_preset(args.workload, logical_pages=pages,
                        num_requests=args.requests)
    ssd = SSDConfig(logical_pages=pages)
    rows = []
    for fraction in FRACTIONS:
        config = SimulationConfig(
            ssd=ssd,
            cache=CacheConfig(
                budget_bytes=ssd.cache_bytes_for_fraction(fraction)))
        run = simulate(make_ftl("tpftl", config), trace,
                       warmup_requests=args.warmup)
        m = run.metrics
        label = f"1/{round(1 / fraction)}" if fraction < 1 else "1"
        rows.append([label, config.resolved_cache().budget_bytes,
                     m.hit_ratio, m.p_replace_dirty,
                     run.response.mean, m.write_amplification])
    print(format_table(
        ["Table frac", "Bytes", "Hit ratio", "Prd", "Resp(us)", "WA"],
        rows, precision=3,
        title=f"TPFTL cache-size sweep on {trace.name}"))
    print("\nExpected shape (paper Fig 9): hit ratio rises and Prd, "
          "response time\nand WA fall as the cache grows; MSR-like "
          "workloads saturate early,\nFinancial-like keep improving.")


if __name__ == "__main__":
    main()
