#!/usr/bin/env python3
"""Replay a real block trace (SPC or MSR Cambridge format) through an FTL.

If you have the paper's original traces (UMass Financial1/2 in SPC
format, MSR-ts/MSR-src in MSR CSV format), point this script at them to
run the evaluation on the real inputs.  Without a file, it writes a
small demonstration SPC trace and replays that, so the example always
runs.

Run:  python examples/replay_trace.py [TRACE] [--format spc|msr]
      python examples/replay_trace.py Financial1.spc --ftl tpftl
"""

import argparse
import random
from pathlib import Path

from repro import SimulationConfig, SSDConfig, make_ftl, simulate
from repro.workloads import (characterize, load_msr_trace,
                             load_spc_trace)

DEMO_PATH = Path("demo_trace.spc")


def write_demo_trace(path: Path, requests: int = 5_000,
                     seed: int = 7) -> None:
    """An OLTP-ish SPC-format trace: hot random writes + a few runs."""
    rng = random.Random(seed)
    clock = 0.0
    lines = []
    for _ in range(requests):
        clock += rng.expovariate(1 / 0.002)  # ~2ms inter-arrival
        if rng.random() < 0.1:  # a sequential run fragment
            lba = rng.randrange(0, 60_000, 64)
            size = 4096 * rng.randint(2, 8)
        else:
            lba = rng.randrange(64_000)
            size = 4096
        opcode = "w" if rng.random() < 0.75 else "r"
        lines.append(f"0,{lba},{size},{opcode},{clock:.6f}")
    path.write_text("\n".join(lines) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", default=None,
                        help="path to an SPC or MSR trace file")
    parser.add_argument("--format", choices=("spc", "msr"),
                        default="spc")
    parser.add_argument("--ftl", default="tpftl")
    parser.add_argument("--device-pages", type=int, default=None,
                        help="wrap LPNs into a device of this many "
                             "pages (default: size to the trace)")
    args = parser.parse_args()

    path = Path(args.trace) if args.trace else DEMO_PATH
    if args.trace is None and not path.exists():
        print(f"no trace given; writing a demo trace to {path}")
        write_demo_trace(path)

    loader = load_spc_trace if args.format == "spc" else load_msr_trace
    trace = loader(path, wrap_pages=args.device_pages)
    stats = characterize(trace)
    print("Loaded:", stats.as_table4_row())

    logical_pages = args.device_pages or trace.logical_pages
    config = SimulationConfig(ssd=SSDConfig(logical_pages=logical_pages))
    ftl = make_ftl(args.ftl, config)
    run = simulate(ftl, trace)
    print(f"\n--- {args.ftl} on {path.name} ---")
    for key, value in run.summary().items():
        print(f"{key:28s} {value}")


if __name__ == "__main__":
    main()
