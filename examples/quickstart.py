#!/usr/bin/env python3
"""Quickstart: simulate TPFTL on a Financial1-like OLTP workload.

Builds a small SSD with the paper's §5.1 configuration (mapping cache =
block-level table + GTD, i.e. 1/128 of the full page-level table), runs
a random-dominant write-intensive trace through TPFTL, and prints the
quantities the paper's evaluation revolves around.

Run:  python examples/quickstart.py
"""

from repro import SimulationConfig, SSDConfig, make_ftl, simulate
from repro.workloads import characterize, financial1


def main() -> None:
    trace = financial1(logical_pages=16_384, num_requests=30_000)
    stats = characterize(trace)
    print("Workload:", stats.as_table4_row())

    config = SimulationConfig(
        ssd=SSDConfig(logical_pages=trace.logical_pages))
    print(f"SSD: {config.ssd.capacity_bytes // (1024 * 1024)}MB, "
          f"mapping cache {config.resolved_cache().budget_bytes}B "
          f"(paper rule: block-level table + GTD)")

    ftl = make_ftl("tpftl", config)
    run = simulate(ftl, trace, warmup_requests=8_000)

    metrics = run.metrics
    print("\n--- TPFTL on", trace.name, "---")
    print(f"cache hit ratio (Hr):           {metrics.hit_ratio:8.3f}")
    print(f"P(replace dirty entry) (Prd):   "
          f"{metrics.p_replace_dirty:8.3f}")
    print(f"translation page reads:         "
          f"{metrics.translation_page_reads:8d}")
    print(f"translation page writes:        "
          f"{metrics.translation_page_writes:8d}")
    print(f"write amplification (A):        "
          f"{metrics.write_amplification:8.3f}")
    print(f"block erases:                   {metrics.total_erases:8d}")
    print(f"mean response time:             "
          f"{run.response.mean:8.1f} us")


if __name__ == "__main__":
    main()
