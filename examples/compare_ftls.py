#!/usr/bin/env python3
"""Compare every FTL on the paper's four workload types.

A miniature of the paper's Fig 6: DFTL, TPFTL, S-FTL and the optimal
FTL (plus CDFTL with the larger cache it needs) on Financial- and
MSR-like traces, reporting hit ratio, Prd, translation traffic, write
amplification and response time.

Run:  python examples/compare_ftls.py [--requests N]
"""

import argparse

from repro import (CacheConfig, SimulationConfig, SSDConfig, make_ftl,
                   simulate)
from repro.metrics import format_table
from repro.workloads import make_preset

WORKLOADS = ("financial1", "financial2", "msr-ts", "msr-src")
FTLS = ("dftl", "tpftl", "sftl", "optimal")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=25_000)
    parser.add_argument("--warmup", type=int, default=6_000)
    args = parser.parse_args()

    for workload in WORKLOADS:
        pages = 65_536 if workload.startswith("msr") else 16_384
        trace = make_preset(workload, logical_pages=pages,
                            num_requests=args.requests)
        config = SimulationConfig(ssd=SSDConfig(logical_pages=pages))
        rows = []
        for name in FTLS:
            run = simulate(make_ftl(name, config), trace,
                           warmup_requests=args.warmup)
            m = run.metrics
            rows.append([
                name, m.hit_ratio, m.p_replace_dirty,
                m.translation_page_reads, m.translation_page_writes,
                m.write_amplification, run.response.mean,
                m.total_erases,
            ])
        # CDFTL needs a cache of at least one uncompressed page
        cdftl_config = SimulationConfig(
            ssd=config.ssd,
            cache=CacheConfig(budget_bytes=max(
                12 * 1024, config.ssd.paper_cache_bytes())))
        run = simulate(make_ftl("cdftl", cdftl_config), trace,
                       warmup_requests=args.warmup)
        m = run.metrics
        rows.append(["cdftl*", m.hit_ratio, m.p_replace_dirty,
                     m.translation_page_reads,
                     m.translation_page_writes, m.write_amplification,
                     run.response.mean, m.total_erases])
        print(format_table(
            ["FTL", "Hr", "Prd", "T-reads", "T-writes", "WA",
             "Resp(us)", "Erases"],
            rows, precision=3,
            title=f"\n=== {workload} ({args.requests} requests) ==="))
        print("(*cdftl runs with the larger cache it requires)")


if __name__ == "__main__":
    main()
