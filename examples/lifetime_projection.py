#!/usr/bin/env python3
"""Project device lifetime under each FTL.

The paper's lifetime argument in one table: every extra translation
write eventually costs an erase, and each block sustains only ~3,000
P/E cycles.  This example replays a write-heavy OLTP workload under
DFTL, TPFTL and the optimal FTL and projects how much host data the
device could absorb before wearing out, with and without the observed
wear imbalance.

Run:  python examples/lifetime_projection.py
"""

from repro import SimulationConfig, SSDConfig, make_ftl, simulate
from repro.lifetime import estimate_lifetime
from repro.metrics import format_table
from repro.workloads import financial1


def main() -> None:
    trace = financial1(logical_pages=16_384, num_requests=25_000)
    config = SimulationConfig(
        ssd=SSDConfig(logical_pages=trace.logical_pages))
    estimates = {}
    for name in ("dftl", "tpftl", "optimal"):
        ftl = make_ftl(name, config)
        run = simulate(ftl, trace, warmup_requests=6_000)
        estimates[name] = estimate_lifetime(run, config.ssd,
                                            flash=ftl.flash)
    base = estimates["dftl"]
    rows = []
    for name, estimate in estimates.items():
        rows.append([
            name,
            estimate.erases_per_gb,
            estimate.projected_user_bytes / 2**40,       # TiB
            estimate.projected_user_bytes_skewed / 2**40,
            estimate.relative_lifetime(base),
            estimate.wear_imbalance,
        ])
    print(format_table(
        ["FTL", "Erases/GiB", "Life (TiB)", "Life skewed (TiB)",
         "vs DFTL", "Imbalance"],
        rows, precision=2,
        title="Projected endurance on a Financial1-like workload "
              "(3000 P/E cycles)"))
    print("\nTPFTL's reduced translation writes turn directly into "
          "fewer erases and a\nlonger projected lifetime — the paper's "
          "Fig 7(a) expressed in written TiB.")


if __name__ == "__main__":
    main()
