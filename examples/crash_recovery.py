#!/usr/bin/env python3
"""Crash a busy FTL and rebuild its mapping from flash alone.

The paper's §1 lists power-failure vulnerability as a cost of large RAM
mapping caches: every dirty cached entry is state the on-flash
translation pages do not have yet.  This example runs DFTL and TPFTL
side by side, "crashes" them mid-workload, scans flash to rebuild the
mapping (using the per-page out-of-band identity), and reports each
FTL's consistency debt — TPFTL's batch updates keep far fewer dirty
entries in RAM, so it has less to lose.

Run:  python examples/crash_recovery.py
"""

from repro import SimulationConfig, SSDConfig, make_ftl
from repro.metrics import format_table
from repro.recovery import recover, recovery_report, verify_recovery
from repro.workloads import financial1


def main() -> None:
    trace = financial1(logical_pages=16_384, num_requests=15_000)
    rows = []
    for name in ("dftl", "tpftl"):
        config = SimulationConfig(
            ssd=SSDConfig(logical_pages=trace.logical_pages))
        ftl = make_ftl(name, config)
        for request in trace:
            ftl.serve_request(request)
        # --- crash: RAM contents (cache + GTD) are gone ---
        state = recover(ftl)            # full flash scan
        verify_recovery(ftl)            # scan agrees with live state
        report = recovery_report(ftl)   # vs the on-flash table
        rows.append([
            name,
            state.mapped_pages(),
            report.recovered_translation_pages,
            report.stale_translation_entries,
            f"{report.stale_fraction * 100:.2f}%",
        ])
    print(format_table(
        ["FTL", "Pages recovered", "Trans pages", "Stale entries",
         "Stale fraction"],
        rows,
        title="Mapping recovery after a simulated power failure"))
    print("\n'Stale entries' counts mappings whose newest version "
          "existed only in the\ncrashed RAM cache — the on-flash "
          "translation pages still point at the old\nlocation. "
          "Recovery resolves them by scanning page metadata; a "
          "controller\nwithout such a scan would serve stale data. "
          "TPFTL's batch-update\nreplacement keeps this debt smaller "
          "than DFTL's evict-one policy.")


if __name__ == "__main__":
    main()
