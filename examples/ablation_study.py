#!/usr/bin/env python3
"""Ablate TPFTL's four techniques on a Financial1-like workload.

A miniature of the paper's Fig 7(b,c)/8(a,b): every combination of
request-level prefetching (r), selective prefetching (s), batch-update
replacement (b) and clean-first replacement (c), from the bare
two-level-LRU variant ('-') to the complete TPFTL ('rsbc'), plus DFTL
as the external baseline.

Run:  python examples/ablation_study.py
"""

import argparse

from repro import SimulationConfig, SSDConfig, TPFTLConfig, make_ftl, \
    simulate
from repro.metrics import format_table
from repro.workloads import financial1

CONFIGS = ("dftl", "-", "b", "c", "bc", "r", "s", "rs", "rsbc")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=25_000)
    parser.add_argument("--warmup", type=int, default=6_000)
    args = parser.parse_args()

    trace = financial1(logical_pages=16_384,
                       num_requests=args.requests)
    rows = []
    baseline_response = None
    for monogram in CONFIGS:
        ssd = SSDConfig(logical_pages=trace.logical_pages)
        if monogram == "dftl":
            config = SimulationConfig(ssd=ssd)
            ftl = make_ftl("dftl", config)
        else:
            config = SimulationConfig(
                ssd=ssd, tpftl=TPFTLConfig.from_monogram(monogram))
            ftl = make_ftl("tpftl", config)
        run = simulate(ftl, trace, warmup_requests=args.warmup)
        if baseline_response is None:
            baseline_response = run.response.mean
        m = run.metrics
        rows.append([
            monogram, m.p_replace_dirty, m.hit_ratio,
            run.response.mean / baseline_response,
            m.write_amplification,
        ])
    print(format_table(
        ["Config", "Prd", "Hit ratio", "Resp/DFTL", "WA"], rows,
        precision=3,
        title=f"TPFTL ablation on {trace.name} "
              f"({args.requests} requests)"))
    print("\nr=request prefetch  s=selective prefetch  "
          "b=batch-update  c=clean-first")
    print("Expected shape (paper Fig 7/8): 'b' collapses Prd; 'bc' "
          "halves it again;\n'rs' lifts the hit ratio; 'bc' alone can "
          "beat 'rsbc' on random-write workloads.")


if __name__ == "__main__":
    main()
